package core

// Tests for the paper's §6 rule-processing protocols (experiment
// F5.1 in DESIGN.md) and the §3.2 concurrency claims (C2, C8).

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/datum"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rule"
	"repro/internal/txn"
)

// lastTrace returns the newest finished firing tree.
func lastTrace(t *testing.T, e *Engine) obs.SpanSnapshot {
	t.Helper()
	trees := e.Obs.Tracer().Last(1)
	if len(trees) == 0 {
		t.Fatal("no firing trees recorded")
	}
	return trees[0]
}

// kindsOf flattens a firing tree to its span kinds, pre-order.
func kindsOf(s obs.SpanSnapshot) []string {
	var out []string
	s.Walk(func(n *obs.SpanSnapshot, _ int) { out = append(out, n.Kind) })
	return out
}

func TestEventSignalFlow(t *testing.T) {
	// §6.2: event signal -> condition evaluation in a subtransaction
	// of the trigger -> action in a sibling subtransaction -> the
	// triggering operation resumes only after both complete.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(auditRule("audit", "immediate", "immediate"))

	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	tree := lastTrace(t, e)
	if tree.Kind != "signal" || tree.Txn != uint64(tx.ID()) || len(tree.Children) != 2 {
		t.Fatalf("tree = %v (root %+v)", kindsOf(tree), tree)
	}
	condSp, actSp := tree.Children[0], tree.Children[1]
	if condSp.Kind != "cond" || actSp.Kind != "action" {
		t.Fatalf("trace = %v", kindsOf(tree))
	}
	if condSp.ParentTxn != uint64(tx.ID()) || actSp.ParentTxn != uint64(tx.ID()) {
		t.Fatalf("condition/action not anchored at the trigger: %+v %+v (trigger %d)", condSp, actSp, tx.ID())
	}
	if condSp.Txn == actSp.Txn {
		t.Fatal("condition and action must run in distinct subtransactions")
	}
	if condSp.Txn <= uint64(tx.ID()) || actSp.Txn <= condSp.Txn {
		t.Fatalf("transaction creation order wrong: trigger=%d cond=%d action=%d", tx.ID(), condSp.Txn, actSp.Txn)
	}
	if actSp.Outcome != "fired" {
		t.Fatalf("action outcome = %q, want fired", actSp.Outcome)
	}
	// The trigger is operable again (all subtransactions terminated).
	if err := tx.CheckOperable(); err != nil {
		t.Fatalf("trigger still suspended after signal processing: %v", err)
	}
	tx.Commit()
}

func TestCommitFlow(t *testing.T) {
	// §6.3: deferred firings queue during the transaction and drain
	// as part of commit processing, before commit completes.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(auditRule("audit", "deferred", "immediate"))

	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(51)})
	// Pre-commit: each modify produced a signal tree holding only a
	// queue marker — nothing fired yet.
	pre := e.Obs.Tracer().Last(2)
	if len(pre) != 2 {
		t.Fatalf("pre-commit trees = %d, want 2", len(pre))
	}
	for _, s := range pre {
		if got := fmt.Sprint(kindsOf(s)); got != "[signal deferred-queue]" {
			t.Fatalf("pre-commit trace = %v", got)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	drain := lastTrace(t, e)
	want := "[commit deferred-drain cond action deferred-drain cond action]"
	if got := fmt.Sprint(kindsOf(drain)); got != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	if drain.Txn != uint64(tx.ID()) {
		t.Fatalf("drain txn = %d, want committing transaction %d", drain.Txn, tx.ID())
	}
	// Drained firings are anchored at the committing transaction.
	drain.Walk(func(n *obs.SpanSnapshot, _ int) {
		if n.Kind == "cond" && n.ParentTxn != uint64(tx.ID()) {
			t.Fatalf("deferred condition parent = %d, want trigger %d", n.ParentTxn, tx.ID())
		}
	})
}

func TestRuleCreationFlow(t *testing.T) {
	// §6.1: creating a rule stores a rule object, programs the event
	// detectors, registers the condition in the graph, and maps the
	// event to the rule.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	subsBefore := e.Detectors.Subscriptions()
	nodesBefore := e.Conditions.NodeCount()
	def := auditRule("audit", "immediate", "immediate")
	def.Condition = []string{"select s from Stock s"}
	r, err := e.CreateRule(def)
	if err != nil {
		t.Fatal(err)
	}
	if e.Detectors.Subscriptions() != subsBefore+1 {
		t.Fatal("event detector not programmed")
	}
	if e.Conditions.NodeCount() != nodesBefore+1 {
		t.Fatal("condition not added to the graph")
	}
	// The rule object exists in the database.
	tx := e.Begin()
	defer tx.Commit()
	recObj, err := e.Get(tx, r.OID)
	if err != nil || recObj.Class != rule.RuleClass {
		t.Fatalf("rule object = %+v (%v)", recObj, err)
	}
	if recObj.Attrs["name"].AsString() != "audit" {
		t.Fatal("rule object name wrong")
	}
}

func TestSiblingActionsRunConcurrently(t *testing.T) {
	// C2 / §3.2: "all of the rules fire concurrently as sibling
	// transactions" — verified with a rendezvous barrier that can
	// only be passed if all N actions are alive at the same time.
	const n = 4
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)

	var mu sync.Mutex
	arrived := 0
	cond := sync.NewCond(&mu)
	barrier := func(*txn.Txn, map[string]datum.Value) error {
		mu.Lock()
		defer mu.Unlock()
		arrived++
		cond.Broadcast()
		deadline := time.Now().Add(5 * time.Second)
		for arrived < n {
			if time.Now().After(deadline) {
				return errors.New("barrier timeout: actions are not concurrent")
			}
			cond.Wait()
		}
		return nil
	}
	e.RegisterCall("barrier", barrier)
	// Watchdog: wake sleepers periodically so the deadline check runs.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(100 * time.Millisecond):
				cond.Broadcast()
			}
		}
	}()

	for i := 0; i < n; i++ {
		_, err := e.CreateRule(rule.Def{
			Name:   fmt.Sprintf("sibling-%d", i),
			Event:  "modify(Stock)",
			Action: []rule.Step{{Kind: rule.StepCall, Fn: "barrier"}},
			EC:     "immediate", CA: "immediate",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatalf("siblings did not run concurrently: %v", err)
	}
	tx.Commit()
}

func TestCascadeProducesNestedTree(t *testing.T) {
	// §3.2: cascading rule firings produce a TREE of nested
	// transactions; verify depths via traces.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	tx0 := e.Begin()
	if err := e.DefineClass(tx0, object.Class{Name: "L2", Attrs: []object.AttrDef{{Name: "x", Kind: datum.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()
	oid := createStock(t, e, "XRX", 48)

	e.CreateRule(rule.Def{
		Name:  "lvl1",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'1'"}}},
		EC: "immediate", CA: "immediate",
	})
	e.CreateRule(rule.Def{
		Name:  "lvl2",
		Event: "create(Audit)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "L2",
			Attrs: map[string]string{"x": "1"}}},
		EC: "immediate", CA: "immediate",
	})

	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	// lvl2's cascaded signal must hang under lvl1's action span, whose
	// subtransaction anchors lvl2's condition — one tree, depth >= 4:
	// signal -> action(lvl1) -> signal -> cond/action(lvl2).
	tree := lastTrace(t, e)
	var lvl1Action *obs.SpanSnapshot
	tree.Walk(func(n *obs.SpanSnapshot, _ int) {
		if n.Kind == "action" && n.Name == "lvl1" {
			lvl1Action = n
		}
	})
	if lvl1Action == nil {
		t.Fatalf("no lvl1 action span: %v", kindsOf(tree))
	}
	if len(lvl1Action.Children) == 0 || lvl1Action.Children[0].Kind != "signal" {
		t.Fatalf("cascade not nested under lvl1's action: %v", kindsOf(tree))
	}
	nested := false
	lvl1Action.Walk(func(n *obs.SpanSnapshot, _ int) {
		if n.Kind == "cond" && n.ParentTxn == lvl1Action.Txn {
			nested = true
		}
	})
	if !nested {
		t.Fatalf("lvl2 condition not anchored at lvl1's action txn %d: %v", lvl1Action.Txn, kindsOf(tree))
	}
	if d := tree.Depth(); d < 4 {
		t.Fatalf("cascade tree depth = %d, want >= 4", d)
	}
	tx.Commit()
}

func TestSerializabilityStress(t *testing.T) {
	// C8: concurrent transfers between accounts with an auditing rule
	// attached; total balance is invariant and the books stay
	// consistent under deadlock-retry.
	e, _ := newEngine(t)
	tx0 := e.Begin()
	if err := e.DefineClass(tx0, object.Class{
		Name: "Account",
		Attrs: []object.AttrDef{
			{Name: "owner", Kind: datum.KindString, Required: true},
			{Name: "balance", Kind: datum.KindInt, Required: true},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineClass(tx0, auditClass); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()

	const accounts = 8
	const initial = 1000
	oids := make([]datum.OID, accounts)
	seed := e.Begin()
	for i := range oids {
		var err error
		oids[i], err = e.Create(seed, "Account", map[string]datum.Value{
			"owner": datum.Str(fmt.Sprintf("acct%d", i)), "balance": datum.Int(initial),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	seed.Commit()

	// An immediate rule audits every account modification.
	if _, err := e.CreateRule(rule.Def{
		Name:  "audit-transfers",
		Event: "modify(Account)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'xfer'"}}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const transfersPerWorker = 30
	var committed, retried int64
	var cm sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfersPerWorker; {
				a, b := rng.Intn(accounts), rng.Intn(accounts)
				if a == b {
					continue
				}
				// Deterministic lock order avoids most deadlocks; the
				// rule's Audit extent lock still serializes firings.
				if a > b {
					a, b = b, a
				}
				tx := e.Begin()
				err := transfer(e, tx, oids[a], oids[b], 1)
				if err != nil {
					tx.Abort()
					if errors.Is(err, lock.ErrDeadlock) {
						cm.Lock()
						retried++
						cm.Unlock()
						continue // retry
					}
					t.Errorf("transfer: %v", err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				cm.Lock()
				committed++
				cm.Unlock()
				i++
			}
		}(w)
	}
	wg.Wait()
	e.Quiesce()

	check := e.Begin()
	defer check.Commit()
	res, err := e.Query(check, "select sum(a.balance) as total from Account a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != accounts*initial {
		t.Fatalf("total balance = %d, want %d (money %s)", got, accounts*initial,
			map[bool]string{true: "created", false: "destroyed"}[got > accounts*initial])
	}
	// Every committed transfer audited exactly twice (two modifies).
	res, err = e.Query(check, "select count(*) as n from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 2*committed {
		t.Fatalf("audit rows = %d, want %d (2 per committed transfer)", got, 2*committed)
	}
	if committed != workers*transfersPerWorker {
		t.Fatalf("committed = %d", committed)
	}
}

func transfer(e *Engine, tx *txn.Txn, from, to datum.OID, amount int64) error {
	// Read-modify-write must use the locking read: plain Get is a
	// lock-free snapshot read, so two racing transfers could both
	// read the same balance and the later write would lose the
	// earlier one.
	src, err := e.GetForUpdate(tx, from)
	if err != nil {
		return err
	}
	dst, err := e.GetForUpdate(tx, to)
	if err != nil {
		return err
	}
	if err := e.Modify(tx, from, map[string]datum.Value{
		"balance": datum.Int(src.Attrs["balance"].AsInt() - amount)}); err != nil {
		return err
	}
	return e.Modify(tx, to, map[string]datum.Value{
		"balance": datum.Int(dst.Attrs["balance"].AsInt() + amount)})
}

func TestEngineCrashRecovery(t *testing.T) {
	// C8: committed top-level effects survive an abrupt stop (no
	// Close); uncommitted ones do not.
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	c1 := e.Begin()
	committedOID, _ := e.Create(c1, "Stock", map[string]datum.Value{
		"symbol": datum.Str("SAFE"), "price": datum.Float(1),
	})
	c1.Commit()
	c2 := e.Begin()
	e.Create(c2, "Stock", map[string]datum.Value{
		"symbol": datum.Str("LOST"), "price": datum.Float(2),
	})
	// Crash: c2 never commits, engine never closed.
	_ = c2

	e2, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	defer tx2.Commit()
	if _, err := e2.Get(tx2, committedOID); err != nil {
		t.Fatalf("committed object lost: %v", err)
	}
	res, err := e2.Query(tx2, "select count(*) as n from Stock s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("recovered %d stocks, want 1", res.Rows[0][0].AsInt())
	}
}

func TestEngineCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	e.DefineClass(tx, stockClass)
	tx.Commit()
	for i := 0; i < 10; i++ {
		tx := e.Begin()
		e.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(fmt.Sprintf("S%d", i)), "price": datum.Float(float64(i)),
		})
		tx.Commit()
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint commits land in the fresh WAL.
	tx2 := e.Begin()
	e.Create(tx2, "Stock", map[string]datum.Value{"symbol": datum.Str("POST"), "price": datum.Float(99)})
	tx2.Commit()
	e.Close()

	e2, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx3 := e2.Begin()
	defer tx3.Commit()
	res, err := e2.Query(tx3, "select count(*) as n from Stock s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 11 {
		t.Fatalf("recovered %d stocks, want 11", res.Rows[0][0].AsInt())
	}
}

func TestBackgroundCheckpointLoop(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch),
		CheckpointInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	e.DefineClass(tx, stockClass)
	tx.Commit()
	for i := 0; i < 20; i++ {
		tx := e.Begin()
		e.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(fmt.Sprintf("S%d", i)), "price": datum.Float(float64(i)),
		})
		tx.Commit()
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Store.Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Close(); err != nil { // loop must join cleanly
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	defer tx2.Commit()
	res, err := e2.Query(tx2, "select count(*) as n from Stock s", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 20 {
		t.Fatalf("recovered %d stocks, want 20", res.Rows[0][0].AsInt())
	}
}

func TestSeparateFiringErrorReported(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	var mu sync.Mutex
	var reported []string
	e.Rules.SetErrorHandler(func(rule string, err error) {
		mu.Lock()
		reported = append(reported, rule)
		mu.Unlock()
	})
	e.RegisterCall("explode", func(*txn.Txn, map[string]datum.Value) error {
		return errors.New("boom")
	})
	e.CreateRule(rule.Def{
		Name:   "fragile",
		Event:  "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "explode"}},
		EC:     "separate", CA: "immediate",
	})
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatalf("separate firing error leaked into trigger: %v", err)
	}
	tx.Commit()
	e.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(reported) != 1 || reported[0] != "fragile" {
		t.Fatalf("reported = %v", reported)
	}
}
