package core

import (
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/rule"
)

var holdingClass = object.Class{
	Name: "Holding",
	Attrs: []object.AttrDef{
		{Name: "owner", Kind: datum.KindString, Indexed: true},
		{Name: "symbol", Kind: datum.KindString},
		{Name: "qty", Kind: datum.KindInt},
	},
}

// joinCondQuery is a rule condition joining the large Holding class
// (selective owner index) against the modified Stock; the planner
// takes the index path for it, which must not change which
// transaction state the condition observes.
const joinCondQuery = "select h, s from Holding h, Stock s " +
	"where h.symbol = s.symbol and h.owner = 'kim' and s.price >= 100"

func setupJoinCondEngine(t *testing.T) (*Engine, datum.OID) {
	t.Helper()
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	tx := e.Begin()
	if err := e.DefineClass(tx, holdingClass); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	oid := createStock(t, e, "XRX", 48)
	tx = e.Begin()
	if _, err := e.Create(tx, "Holding", map[string]datum.Value{
		"owner": datum.Str("kim"), "symbol": datum.Str("XRX"), "qty": datum.Int(3),
	}); err != nil {
		t.Fatal(err)
	}
	// Filler holdings make the owner index clearly cheaper than the
	// extent scan, so the planner reliably picks the index path.
	for i := 0; i < 200; i++ {
		if _, err := e.Create(tx, "Holding", map[string]datum.Value{
			"owner":  datum.Str("other" + string(rune('a'+i%26))),
			"symbol": datum.Str("ZZZ"),
			"qty":    datum.Int(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return e, oid
}

// TestJoinConditionCouplingViews pins down which transaction state a
// join condition with an index access path observes under each E-C
// coupling: immediate sees the trigger's uncommitted write, deferred
// sees the state at commit, separate sees only committed state.
func TestJoinConditionCouplingViews(t *testing.T) {
	cases := []struct {
		ec string
		// audits after the trigger commits: the condition is true only
		// in views that include the price-150 modification.
		want int
	}{
		{"immediate", 1},
		{"deferred", 1},
		{"separate", 0},
	}
	for _, tc := range cases {
		t.Run(tc.ec, func(t *testing.T) {
			e, oid := setupJoinCondEngine(t)

			// The planner must actually take the owner-index path for
			// the condition query, or this test exercises nothing new.
			check := e.Begin()
			text, err := e.Explain(check, joinCondQuery, nil)
			if err != nil {
				t.Fatal(err)
			}
			check.Commit()
			if !strings.Contains(text, "index scan") || !strings.Contains(text, "Holding") {
				t.Fatalf("condition query does not plan an index path:\n%s", text)
			}

			def := rule.Def{
				Name:      "join-cond",
				Event:     "modify(Stock)",
				Condition: []string{joinCondQuery},
				Action: []rule.Step{{
					Kind: rule.StepCreate, Class: "Audit",
					Attrs: map[string]string{"note": "'hit'"},
				}},
				EC: tc.ec, CA: "immediate",
			}
			if _, err := e.CreateRule(def); err != nil {
				t.Fatal(err)
			}

			tx := e.Begin()
			if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(150)}); err != nil {
				t.Fatal(err)
			}
			if tc.ec == "separate" {
				// Force the separate firing to evaluate before the
				// trigger commits: it must see price 48 (committed
				// state), so the condition is unsatisfied.
				e.Quiesce()
				if got := auditVisibleTo(e, nil); got != 0 {
					t.Fatalf("separate condition saw uncommitted trigger state: %d audits", got)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			e.Quiesce()
			if got := auditCount(t, e); got != tc.want {
				t.Fatalf("audits = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestSeparateJoinConditionSeesLaterCommit is the counterpart: once
// the modification is committed, a separate-coupled condition with
// the same index path does see it.
func TestSeparateJoinConditionSeesLaterCommit(t *testing.T) {
	e, oid := setupJoinCondEngine(t)
	def := rule.Def{
		Name:      "join-cond-sep",
		Event:     "modify(Stock)",
		Condition: []string{joinCondQuery},
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'hit'"},
		}},
		EC: "separate", CA: "immediate",
	}
	if _, err := e.CreateRule(def); err != nil {
		t.Fatal(err)
	}
	// First commit raises the price; the firing for THIS event may see
	// 48 or 150 depending on scheduling, so quiesce and reset.
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(150)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Quiesce()
	base := auditCount(t, e)

	// Price is now committed at 150: a new trigger's separate
	// condition must be satisfied.
	tx = e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(151)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.Quiesce()
	if got := auditCount(t, e); got != base+1 {
		t.Fatalf("audits = %d, want %d", got, base+1)
	}
}
