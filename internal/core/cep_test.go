package core

// End-to-end tests of the composite-event runtime through the full
// engine: a rule on a correlated aggregate event fires exactly once
// per qualifying correlation key under concurrent signalers, and
// windowed rules respect the (virtual) clock.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/rule"
)

func TestAggregateRuleFiresOncePerTicker(t *testing.T) {
	// The ISSUE-6 acceptance scenario: a rule on
	// count(PriceDrop where ticker=$t) >= 10 within 1m fires exactly
	// once per qualifying ticker under 8 concurrent signalers, and the
	// correlation instances spread across the template's shards.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	if err := e.DefineEvent("PriceDrop", "ticker", "price"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateRule(rule.Def{
		Name:  "crash-guard",
		Event: "count(PriceDrop where ticker=$t) >= 10 within 1m",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "event.t", "price": "event.cep_count * 1.0"},
		}},
		EC: "immediate", CA: "immediate", // nil-txn signal: degrades to separate
	}); err != nil {
		t.Fatal(err)
	}

	// 16 tickers: the first 8 see exactly 10 drops (qualify, once),
	// the rest only 3 (never qualify). One shuffled stream, drained by
	// 8 concurrent signalers.
	const qualifying, others = 8, 8
	var stream []string
	for i := 0; i < qualifying; i++ {
		for j := 0; j < 10; j++ {
			stream = append(stream, fmt.Sprintf("Q%02d", i))
		}
	}
	for i := 0; i < others; i++ {
		for j := 0; j < 3; j++ {
			stream = append(stream, fmt.Sprintf("N%02d", i))
		}
	}
	rand.New(rand.NewSource(42)).Shuffle(len(stream), func(i, j int) {
		stream[i], stream[j] = stream[j], stream[i]
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += 8 {
				if err := e.SignalEvent(nil, "PriceDrop", map[string]datum.Value{
					"ticker": datum.Str(stream[i]), "price": datum.Float(9.5),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	e.Quiesce()

	// Exactly one Audit row per qualifying ticker, none for the rest.
	tx := e.Begin()
	res, err := e.Query(tx, "select a.note, a.price from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	perTicker := map[string]int{}
	for _, row := range res.Rows {
		perTicker[row[0].AsString()]++
		if got := row[1].AsFloat(); got != 10 {
			t.Fatalf("cep_count binding reached the action as %v, want 10", got)
		}
	}
	tx.Commit()
	if len(res.Rows) != qualifying {
		t.Fatalf("audit rows = %d, want %d (one per qualifying ticker): %v",
			len(res.Rows), qualifying, perTicker)
	}
	for i := 0; i < qualifying; i++ {
		if n := perTicker[fmt.Sprintf("Q%02d", i)]; n != 1 {
			t.Fatalf("ticker Q%02d fired %d times, want exactly 1", i, n)
		}
	}

	// Non-qualifying tickers hold live instances, distributed over the
	// shards (qualifying ones were consumed and reclaimed on firing).
	st := e.Stats().Detectors
	if st.CEPFirings != qualifying {
		t.Fatalf("CEPFirings = %d, want %d", st.CEPFirings, qualifying)
	}
	if st.CEPInstances != others {
		t.Fatalf("CEPInstances = %d, want %d pending tickers", st.CEPInstances, others)
	}
	per := e.Detectors.CEPShardInstances()
	nonzero, total := 0, 0
	for _, n := range per {
		total += n
		if n > 0 {
			nonzero++
		}
	}
	if total != others {
		t.Fatalf("shard instance sum = %d, want %d", total, others)
	}
	if nonzero < 2 {
		t.Fatalf("instances in %d shard(s), want spread over >= 2 of %d", nonzero, len(per))
	}
	if errs := e.AsyncErrors(); len(errs) != 0 {
		t.Fatalf("async errors: %v", errs)
	}
}

func TestWithinRuleRespectsWindow(t *testing.T) {
	// within(PriceDrop, Confirm, 30s where ticker=$t) through the
	// engine on the virtual clock: the pair fires inside the window
	// and is dropped past it.
	e, clk := newEngine(t)
	defineStockAndAudit(t, e)
	if err := e.DefineEvent("PriceDrop", "ticker", "price"); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineEvent("Confirm", "ticker"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateRule(rule.Def{
		Name:  "confirmed-drop",
		Event: "within(PriceDrop, Confirm, 30s where ticker=$t)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "event.t"},
		}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	drop := func(tk string) {
		if err := e.SignalEvent(nil, "PriceDrop", map[string]datum.Value{
			"ticker": datum.Str(tk), "price": datum.Float(1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	confirm := func(tk string) {
		if err := e.SignalEvent(nil, "Confirm", map[string]datum.Value{
			"ticker": datum.Str(tk),
		}); err != nil {
			t.Fatal(err)
		}
	}
	drop("XRX")
	clk.Advance(10 * time.Second)
	confirm("XRX")
	drop("IBM")
	clk.Advance(31 * time.Second) // IBM's partial expires
	confirm("IBM")
	e.Quiesce()
	tx := e.Begin()
	res, err := e.Query(tx, "select a.note from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "XRX" {
		t.Fatalf("audit rows = %v, want exactly one for XRX", res.Rows)
	}
	if exp := e.Stats().Detectors.CEPExpired; exp < 1 {
		t.Fatalf("CEPExpired = %d, want >= 1 (IBM partial)", exp)
	}
}
