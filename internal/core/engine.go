// Package core assembles the HiPAC functional components (Figure 5.1
// of the paper) into one engine: the Object Manager and Transaction
// Manager provide an object-oriented DBMS with nested transactions;
// the Event Detectors, Rule Manager, and Condition Evaluator
// implement ECA rules on top. The engine's API mirrors the four
// interface modules of Figure 4.1 — operations on data, operations on
// transactions, operations on events, and application operations —
// and is re-exported as the library's public API by the root hipac
// package.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cond"
	"repro/internal/datum"
	"repro/internal/event"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rule"
	"repro/internal/storage"
	"repro/internal/txn"
)

// EventClass is the system class persisting external event
// definitions (§4.1 "define").
const EventClass = "__event"

// Options configures an Engine.
type Options struct {
	// Dir is the durability directory (WAL + snapshot). Empty runs
	// fully in memory.
	Dir string
	// NoSync disables fsync on the WAL (benchmarks, tests).
	NoSync bool
	// GroupCommitWindow widens WAL group-commit batches: the flush
	// leader dwells this long before snapshotting the batch, trading
	// commit latency for fewer fsyncs under concurrent load. 0 (the
	// default) flushes immediately; overlapping commits still batch.
	GroupCommitWindow time.Duration
	// CheckpointInterval, when >0 and Dir is set, runs a background
	// fuzzy checkpoint at this period, bounding WAL growth and recovery
	// replay time. Checkpoints do not quiesce commits. 0 disables the
	// loop; Checkpoint can still be called manually.
	CheckpointInterval time.Duration
	// CheckpointAfterBytes, when >0 and Dir is set, additionally
	// triggers a checkpoint whenever the WAL has grown by this many
	// bytes since the last one completed — demand-driven reclamation
	// that tracks the write rate instead of the wall clock. 0 disables
	// the size trigger.
	CheckpointAfterBytes uint64
	// CheckpointCompactEvery, when >0, is the delta-chain length at
	// which the next checkpoint rewrites a full snapshot instead of
	// appending another delta. 0 selects adaptive compaction: compact
	// once the cumulative delta bytes reach half the snapshot's size.
	CheckpointCompactEvery int
	// StoreShards is the number of hash partitions of the in-memory
	// heap (rounded up to a power of two). More shards means less lock
	// contention between parallel readers and committers; the on-disk
	// format is unaffected. 0 means storage.DefaultShards.
	StoreShards int
	// CEPShards is the number of hash partitions of each composite
	// (cep) event template's correlation-key instance map (rounded up
	// to a power of two). Signals for distinct correlation keys
	// advance their NFA instances under independent shard locks. 0
	// means cep.DefaultShards.
	CEPShards int
	// TreeWalkQueries routes queries and condition evaluation through
	// the legacy tree-walk evaluator instead of the cost-based
	// planner. The tree-walk is the differential-testing oracle; the
	// flag exists so a planner regression can be ruled in or out in
	// production without a rebuild.
	TreeWalkQueries bool
	// QueryParallelism caps the planner executor's degree of
	// parallelism for queries and condition evaluation: 0 derives it
	// from GOMAXPROCS, 1 forces serial execution, N>1 allows up to N
	// workers per parallel plan step. Parallel plans return
	// bit-identical results to serial ones; the knob only trades CPU
	// for latency. Ignored when TreeWalkQueries is set.
	QueryParallelism int
	// Clock supplies time for temporal events; nil means the wall
	// clock. Tests pass a *clock.Virtual.
	Clock clock.Clock
	// Obs configures the observability subsystem (histograms and the
	// firing-tree tracer). The zero value enables it with defaults;
	// set Obs.Disabled to run without instrumentation.
	Obs obs.Options
}

// AppHandler serves one application operation invoked by rule actions
// (§4.1 role reversal: HiPAC is the client, the application the
// server).
type AppHandler func(args map[string]datum.Value) (map[string]datum.Value, error)

// Engine is an active DBMS instance.
type Engine struct {
	clk      clock.Clock
	treeWalk bool         // evaluate queries with the tree-walk oracle
	planOpts plan.Options // parallelism + observer for the planner executor

	Txns       *txn.Manager
	Locks      *lock.Manager
	Store      *storage.Store
	Objects    *object.Manager
	Detectors  *event.Detectors
	Conditions *cond.Evaluator
	Rules      *rule.Manager
	Obs        *obs.Obs // always non-nil after Open

	mu        sync.RWMutex
	appOps    map[string]AppHandler
	extEvents map[string][]string // defined external events -> param names
	fallback  rule.AppDispatcher  // e.g. the IPC server's remote dispatch
	async     *asyncSink

	ckptStop chan struct{} // closed by Close to stop the checkpoint loop
	ckptDone chan struct{} // closed by the loop on exit
}

// asyncSink collects errors from asynchronous work (temporal firings,
// background checkpoints). It is a separate object because the store,
// built before the Engine, needs somewhere to report size-triggered
// checkpoint failures.
type asyncSink struct {
	mu   sync.Mutex
	errs []error
}

func (s *asyncSink) record(err error) {
	s.mu.Lock()
	s.errs = append(s.errs, err)
	s.mu.Unlock()
}

func (s *asyncSink) drain() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.errs
	s.errs = nil
	return out
}

// Open creates (or reopens, when opts.Dir holds prior state) an
// engine.
func Open(opts Options) (*Engine, error) {
	clk := opts.Clock
	if clk == nil {
		clk = clock.Real()
	}
	o := obs.New(opts.Obs)
	sink := &asyncSink{}
	txns, locks := txn.NewSystem()
	txns.SetObserver(o.Metrics())
	locks.SetObserver(o.Metrics())
	store, err := storage.Open(txns, storage.Options{Dir: opts.Dir, NoSync: opts.NoSync,
		GroupWindow: opts.GroupCommitWindow, Obs: o.Metrics(),
		CheckpointAfterBytes: opts.CheckpointAfterBytes,
		CompactEvery:         opts.CheckpointCompactEvery,
		Shards:               opts.StoreShards,
		OnAsyncError:         sink.record})
	if err != nil {
		return nil, err
	}
	txns.Register(store)
	objects := object.NewManager(store, nil)
	conds := cond.New(store.ModSeq)
	conds.SetObserver(o.Metrics())
	planOpts := plan.Options{Parallelism: opts.QueryParallelism, Obs: o.Metrics()}
	if !opts.TreeWalkQueries {
		conds.SetExec(plan.Exec(planOpts))
	}
	rules := rule.NewManager(txns, objects, conds)
	rules.SetObs(o)

	e := &Engine{
		clk:        clk,
		treeWalk:   opts.TreeWalkQueries,
		planOpts:   planOpts,
		Txns:       txns,
		Locks:      locks,
		Store:      store,
		Objects:    objects,
		Conditions: conds,
		Rules:      rules,
		Obs:        o,
		appOps:     map[string]AppHandler{},
		extEvents:  map[string][]string{},
		async:      sink,
	}
	det := event.New(clk, rules.HandleEmit)
	det.SetCEPShards(opts.CEPShards)
	det.SetObserver(o.Metrics())
	det.SetAsyncErrorHandler(sink.record)
	e.Detectors = det
	rules.SetDetectors(det)
	rules.SetAppDispatcher(dispatcher{e})
	objects.SetSink(det)
	txns.AddPreCommitHook(rules.ProcessCommit)
	txns.AddListener(func(t *txn.Txn, committed bool) {
		if !committed {
			rules.ProcessAbort(t)
		}
	})

	if err := rules.EnsureRuleClass(); err != nil {
		store.Close()
		return nil, err
	}
	if err := e.ensureEventClass(); err != nil {
		store.Close()
		return nil, err
	}
	if err := e.restoreEvents(); err != nil {
		store.Close()
		return nil, err
	}
	if err := rules.Restore(); err != nil {
		store.Close()
		return nil, err
	}
	if opts.Dir != "" && opts.CheckpointInterval > 0 {
		e.ckptStop = make(chan struct{})
		e.ckptDone = make(chan struct{})
		go e.checkpointLoop(opts.CheckpointInterval)
	}
	return e, nil
}

// checkpointLoop runs fuzzy checkpoints at a fixed period until Close.
// Failures are recorded as async errors; the loop keeps going (a
// transient full disk should not permanently stop WAL reclamation).
func (e *Engine) checkpointLoop(interval time.Duration) {
	defer close(e.ckptDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.ckptStop:
			return
		case <-t.C:
			if _, err := e.Store.Checkpoint(); err != nil {
				e.async.record(fmt.Errorf("checkpoint: %w", err))
			}
		}
	}
}

// Close stops the checkpoint loop, quiesces asynchronous rule
// firings, and closes the store.
func (e *Engine) Close() error {
	if e.ckptStop != nil {
		close(e.ckptStop)
		<-e.ckptDone
	}
	e.Rules.Quiesce()
	return e.Store.Close()
}

// Clock returns the engine's clock.
func (e *Engine) Clock() clock.Clock { return e.clk }

// Checkpoint runs one fuzzy checkpoint — a delta of the records
// dirtied since the last one, or a full snapshot when the chain is
// due for compaction — then truncates the WAL prefix the chain
// covers. It does not quiesce: commits proceed concurrently.
func (e *Engine) Checkpoint() (storage.CheckpointResult, error) {
	return e.Store.Checkpoint()
}

// Quiesce waits for all in-flight separate rule firings.
func (e *Engine) Quiesce() { e.Rules.Quiesce() }

// AsyncErrors drains the errors recorded from asynchronous work:
// temporal or separate-coupled rule processing and background
// (interval- or size-triggered) checkpoints.
func (e *Engine) AsyncErrors() []error {
	return e.async.drain()
}

// --- operations on transactions (Fig 4.1) ---

// Begin starts a top-level transaction. Nested transactions come from
// (*txn.Txn).Child.
func (e *Engine) Begin() *txn.Txn { return e.Txns.Begin() }

// --- operations on data (Fig 4.1) ---

// DefineClass defines a class within tx.
func (e *Engine) DefineClass(tx *txn.Txn, c object.Class) error {
	return e.Objects.DefineClass(tx, c)
}

// DropClass drops a class within tx.
func (e *Engine) DropClass(tx *txn.Txn, name string) error {
	return e.Objects.DropClass(tx, name)
}

// Create creates an object.
func (e *Engine) Create(tx *txn.Txn, class string, attrs map[string]datum.Value) (datum.OID, error) {
	tm := e.Obs.Metrics().Timer(obs.HOp)
	defer tm.Done()
	return e.Objects.Create(tx, class, attrs)
}

// Modify updates an object's attributes.
func (e *Engine) Modify(tx *txn.Txn, oid datum.OID, updates map[string]datum.Value) error {
	tm := e.Obs.Metrics().Timer(obs.HOp)
	defer tm.Done()
	return e.Objects.Modify(tx, oid, updates)
}

// Delete removes an object.
func (e *Engine) Delete(tx *txn.Txn, oid datum.OID) error {
	tm := e.Obs.Metrics().Timer(obs.HOp)
	defer tm.Done()
	return e.Objects.Delete(tx, oid)
}

// Get fetches an object.
func (e *Engine) Get(tx *txn.Txn, oid datum.OID) (storage.Record, error) {
	tm := e.Obs.Metrics().Timer(obs.HOp)
	defer tm.Done()
	return e.Objects.Get(tx, oid)
}

// GetForUpdate returns the object after taking tx's exclusive lock —
// use it for read-modify-write; see object.Manager.GetForUpdate.
func (e *Engine) GetForUpdate(tx *txn.Txn, oid datum.OID) (storage.Record, error) {
	tm := e.Obs.Metrics().Timer(obs.HOp)
	defer tm.Done()
	return e.Objects.GetForUpdate(tx, oid)
}

// Classes lists class definitions visible to tx.
func (e *Engine) Classes(tx *txn.Txn) ([]object.Class, error) {
	return e.Objects.Classes(tx)
}

// Query parses and evaluates a select statement within tx. args, if
// non-nil, bind event.<name> references in the query.
func (e *Engine) Query(tx *txn.Txn, src string, args map[string]datum.Value) (*query.Result, error) {
	tm := e.Obs.Metrics().Timer(obs.HOp)
	defer tm.Done()
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	// Pin one snapshot for the whole evaluation: every scan and fetch
	// of this query sees the same committed state even while
	// committers land concurrently.
	reader := e.Objects.SnapshotReader(tx)
	defer reader.Close()
	if e.treeWalk {
		return query.Eval(q, reader, args)
	}
	return plan.Exec(e.planOpts)(q, reader, args)
}

// Explain parses src and returns the physical plan the cost-based
// planner would execute for it, as text.
func (e *Engine) Explain(tx *txn.Txn, src string, args map[string]datum.Value) (string, error) {
	q, err := query.Parse(src)
	if err != nil {
		return "", err
	}
	reader := e.Objects.SnapshotReader(tx)
	defer reader.Close()
	cat, _ := query.Reader(reader).(plan.Catalog)
	return plan.Build(q, cat, args, e.planOpts).Explain(), nil
}

// --- operations on events (Fig 4.1) ---

func (e *Engine) ensureEventClass() error {
	t := e.Txns.Begin()
	t.Internal = true
	err := e.Objects.DefineClass(t, object.Class{
		Name: EventClass,
		Attrs: []object.AttrDef{
			{Name: "name", Kind: datum.KindString, Required: true},
			{Name: "params", Kind: datum.KindList},
		},
	})
	if errors.Is(err, object.ErrClassExists) {
		err = nil
	}
	if err != nil {
		t.Abort()
		return err
	}
	return t.Commit()
}

func (e *Engine) restoreEvents() error {
	t := e.Txns.Begin()
	t.Internal = true
	defer t.Commit()
	return e.Objects.Reader(t).ScanClass(EventClass, func(_ datum.OID, attrs map[string]datum.Value) bool {
		var params []string
		for _, p := range attrs["params"].AsList() {
			params = append(params, p.AsString())
		}
		e.extEvents[attrs["name"].AsString()] = params
		return true
	})
}

// DefineEvent defines an application-specific external event with the
// given formal parameter names (§4.1 "define"). The definition is
// durable.
func (e *Engine) DefineEvent(name string, params ...string) error {
	if name == "" {
		return errors.New("core: event needs a name")
	}
	e.mu.Lock()
	if _, dup := e.extEvents[name]; dup {
		e.mu.Unlock()
		return fmt.Errorf("core: event %q already defined", name)
	}
	e.extEvents[name] = params
	e.mu.Unlock()

	vals := make([]datum.Value, len(params))
	for i, p := range params {
		vals[i] = datum.Str(p)
	}
	t := e.Txns.Begin()
	t.Internal = true
	if _, err := e.Objects.Create(t, EventClass, map[string]datum.Value{
		"name":   datum.Str(name),
		"params": datum.List(vals...),
	}); err != nil {
		t.Abort()
		e.mu.Lock()
		delete(e.extEvents, name)
		e.mu.Unlock()
		return err
	}
	return t.Commit()
}

// EventDefined reports whether an external event is defined, with its
// parameter names.
func (e *Engine) EventDefined(name string) ([]string, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.extEvents[name]
	return p, ok
}

// SignalEvent signals an application-defined event (§4.1 "signal").
// tx may be nil for occurrences outside any transaction. The call
// returns after immediate rule processing; its error is the firing
// error, if any (e.g. an integrity rule's abort request).
func (e *Engine) SignalEvent(tx *txn.Txn, name string, args map[string]datum.Value) error {
	e.mu.RLock()
	params, defined := e.extEvents[name]
	e.mu.RUnlock()
	if !defined {
		return fmt.Errorf("core: event %q is not defined", name)
	}
	for _, p := range params {
		if _, ok := args[p]; !ok {
			return fmt.Errorf("core: event %q needs argument %q", name, p)
		}
	}
	var id lock.TxnID
	if tx != nil {
		if err := tx.CheckOperable(); err != nil {
			return err
		}
		id = tx.ID()
	}
	_, err := e.Detectors.SignalExternal(name, id, args)
	return err
}

// --- application operations (Fig 4.1) ---

// RegisterAppOperation registers an in-process handler for an
// application operation that rule actions may request.
func (e *Engine) RegisterAppOperation(name string, h AppHandler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.appOps[name] = h
}

// UnregisterAppOperation removes a handler.
func (e *Engine) UnregisterAppOperation(name string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.appOps, name)
}

// SetFallbackDispatcher installs a dispatcher consulted for
// operations with no in-process handler (the IPC server routes these
// to connected application programs).
func (e *Engine) SetFallbackDispatcher(d rule.AppDispatcher) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fallback = d
}

// dispatcher adapts the engine's registries to rule.AppDispatcher.
type dispatcher struct{ e *Engine }

// Dispatch routes an application request from a rule action.
func (d dispatcher) Dispatch(op string, args map[string]datum.Value) (map[string]datum.Value, error) {
	d.e.mu.RLock()
	h := d.e.appOps[op]
	fb := d.e.fallback
	d.e.mu.RUnlock()
	if h != nil {
		return h(args)
	}
	if fb != nil {
		return fb.Dispatch(op, args)
	}
	return nil, fmt.Errorf("core: no application serves operation %q", op)
}

// --- operations on rules ---

// CreateRule defines, persists, and activates an ECA rule.
func (e *Engine) CreateRule(def rule.Def) (*rule.Rule, error) { return e.Rules.CreateRule(def) }

// DeleteRule removes a rule.
func (e *Engine) DeleteRule(name string) error { return e.Rules.DeleteRule(name) }

// UpdateRule replaces a rule's definition (§2.2 "modify"), keeping
// its object identity.
func (e *Engine) UpdateRule(def rule.Def) (*rule.Rule, error) { return e.Rules.UpdateRule(def) }

// EnableRule re-enables automatic firing of a rule.
func (e *Engine) EnableRule(name string) error { return e.Rules.EnableRule(name) }

// DisableRule disables automatic firing of a rule.
func (e *Engine) DisableRule(name string) error { return e.Rules.DisableRule(name) }

// FireRule fires a rule manually (§2.2), regardless of enablement.
func (e *Engine) FireRule(tx *txn.Txn, name string, args map[string]datum.Value) error {
	return e.Rules.Fire(tx, name, args)
}

// RegisterCall registers a Go callback for "call" action steps.
func (e *Engine) RegisterCall(name string, fn rule.CallFunc) { e.Rules.RegisterCall(name, fn) }

// Stats aggregates the counters of all components.
type Stats struct {
	Store      storage.Stats
	Locks      lock.Stats
	Detectors  event.Stats
	Conditions cond.Stats
	Rules      rule.Stats
	LiveTxns   int
}

// Stats returns a snapshot of all component counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Store:      e.Store.Stats(),
		Locks:      e.Locks.Stats(),
		Detectors:  e.Detectors.Stats(),
		Conditions: e.Conditions.Stats(),
		Rules:      e.Rules.Stats(),
		LiveTxns:   e.Txns.Live(),
	}
}
