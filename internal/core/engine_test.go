package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/datum"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/rule"
	"repro/internal/storage"
	"repro/internal/txn"
)

var epoch = time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

// newEngine returns an in-memory engine on a virtual clock.
func newEngine(t *testing.T) (*Engine, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(epoch)
	e, err := Open(Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, clk
}

var stockClass = object.Class{
	Name: "Stock",
	Attrs: []object.AttrDef{
		{Name: "symbol", Kind: datum.KindString, Required: true},
		{Name: "price", Kind: datum.KindFloat, Indexed: true},
	},
}

var auditClass = object.Class{
	Name: "Audit",
	Attrs: []object.AttrDef{
		{Name: "note", Kind: datum.KindString},
		{Name: "price", Kind: datum.KindFloat},
	},
}

func defineStockAndAudit(t *testing.T, e *Engine) {
	t.Helper()
	tx := e.Begin()
	if err := e.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineClass(tx, auditClass); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func createStock(t *testing.T, e *Engine, sym string, price float64) datum.OID {
	t.Helper()
	tx := e.Begin()
	oid, err := e.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str(sym), "price": datum.Float(price),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return oid
}

// auditCount counts Audit rows in a fresh transaction.
func auditCount(t *testing.T, e *Engine) int {
	t.Helper()
	tx := e.Begin()
	defer tx.Commit()
	return auditCountIn(t, e, tx)
}

func auditCountIn(t *testing.T, e *Engine, tx *txn.Txn) int {
	t.Helper()
	res, err := e.Query(tx, "select count(*) as n from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	return int(res.Rows[0][0].AsInt())
}

// auditVisibleTo counts Audit rows visible to a transaction WITHOUT
// taking locks (a raw storage scan). Lets tests observe isolation
// boundaries that a locking scan would simply block on.
func auditVisibleTo(e *Engine, tx *txn.Txn) int {
	n := 0
	var id lock.TxnID
	if tx != nil {
		id = tx.ID()
	}
	e.Store.ScanClass(id, "Audit", func(storage.Record) bool { n++; return true })
	return n
}

// auditRule returns a rule definition that appends an Audit row on
// Stock modifications, with the given coupling modes.
func auditRule(name, ec, ca string) rule.Def {
	return rule.Def{
		Name:  name,
		Event: "modify(Stock)",
		Action: []rule.Step{{
			Kind:  rule.StepCreate,
			Class: "Audit",
			Attrs: map[string]string{
				"note":  "'modified'",
				"price": "event.new_price",
			},
		}},
		EC: ec,
		CA: ca,
	}
}

func TestQuickstartRuleFires(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	if _, err := e.CreateRule(auditRule("audit", "immediate", "immediate")); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	// Immediate coupling: the effect exists inside the triggering
	// transaction as soon as the operation returns.
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("audit rows inside trigger = %d, want 1", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := auditCount(t, e); got != 1 {
		t.Fatalf("audit rows after commit = %d", got)
	}
	// The audit row carries the event binding.
	check := e.Begin()
	defer check.Commit()
	res, err := e.Query(check, "select a.price from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsFloat() != 50 {
		t.Fatalf("audit price = %v", res.Rows[0][0])
	}
}

func TestCouplingMatrix(t *testing.T) {
	// All nine E-C x C-A combinations must execute the action in the
	// transaction the execution model prescribes (C1 in DESIGN.md).
	cases := []struct {
		ec, ca string
		// visibleInTrigger: the audit row is visible to the
		// triggering transaction right after the operation (own
		// subtransaction effects, or committed separate effects).
		visibleInTrigger bool
		// visibleBeforeCommit: visible OUTSIDE the trigger before it
		// commits — true only when a separate top-level firing
		// already committed the action.
		visibleBeforeCommit bool
	}{
		{"immediate", "immediate", true, false},
		{"immediate", "deferred", true, false},
		{"immediate", "separate", true, true}, // separate action committed
		{"deferred", "immediate", false, false},
		{"deferred", "deferred", false, false},
		{"deferred", "separate", false, false}, // action spawns at commit
		{"separate", "immediate", true, true},
		{"separate", "deferred", true, true},
		{"separate", "separate", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.ec+"/"+tc.ca, func(t *testing.T) {
			e, _ := newEngine(t)
			defineStockAndAudit(t, e)
			oid := createStock(t, e, "XRX", 48)
			if _, err := e.CreateRule(auditRule("audit", tc.ec, tc.ca)); err != nil {
				t.Fatal(err)
			}
			tx := e.Begin()
			if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
				t.Fatal(err)
			}
			if tc.ec == "separate" || tc.ca == "separate" {
				// Await asynchronous firings; they cannot need tx's
				// locks here (Audit is disjoint from the trigger).
				e.Quiesce()
			}
			// Raw-visibility checks (lock-free): a locking scan from
			// another transaction would rightly block on tx's locks.
			if got := auditVisibleTo(e, tx) == 1; got != tc.visibleInTrigger {
				t.Errorf("visible in trigger = %v, want %v", got, tc.visibleInTrigger)
			}
			if got := auditVisibleTo(e, nil) == 1; got != tc.visibleBeforeCommit {
				t.Errorf("visible before trigger commit = %v, want %v", got, tc.visibleBeforeCommit)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			e.Quiesce()
			if got := auditCount(t, e); got != 1 {
				t.Errorf("final audit rows = %d, want 1", got)
			}
		})
	}
}

func TestConditionFiltersFiring(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	def := auditRule("threshold", "immediate", "immediate")
	def.Condition = []string{"select s from Stock s where s.symbol = 'XRX' and event.new_price >= 50"}
	if _, err := e.CreateRule(def); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(49)})
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatalf("rule fired below threshold: %d rows", got)
	}
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(51)})
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("rule did not fire at threshold: %d rows", got)
	}
	tx.Commit()
}

func TestActionRunsPerPrimaryRow(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	for i := 0; i < 3; i++ {
		createStock(t, e, fmt.Sprintf("S%d", i), float64(100+i))
	}
	oid := createStock(t, e, "TRIGGER", 1)
	def := rule.Def{
		Name:      "fanout",
		Event:     "modify(Stock)",
		Condition: []string{"select s.symbol as sym, s.price as p from Stock s where s.price >= 100"},
		Action: []rule.Step{{
			Kind:  rule.StepCreate,
			Class: "Audit",
			Attrs: map[string]string{"note": "sym", "price": "p"},
		}},
		EC: "immediate", CA: "immediate",
	}
	if _, err := e.CreateRule(def); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(2)}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 3 {
		t.Fatalf("action executions = %d, want one per primary row (3)", got)
	}
	tx.Commit()
}

func TestAbortStepRollsBackTrigger(t *testing.T) {
	// The constraint-enforcement pattern: a rule with an abort action
	// makes the triggering operation fail; the application aborts.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	def := rule.Def{
		Name:      "no-negative-prices",
		Event:     "modify(Stock)",
		Condition: []string{"select s from Stock s where event.new_price < 0"},
		Action:    []rule.Step{{Kind: rule.StepAbort}},
		EC:        "immediate", CA: "immediate",
	}
	if _, err := e.CreateRule(def); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(-5)})
	if !errors.Is(err, rule.AbortRequested) {
		t.Fatalf("modify error = %v, want AbortRequested", err)
	}
	tx.Abort()
	check := e.Begin()
	rec, err := e.Get(check, oid)
	if err != nil || rec.Attrs["price"].AsFloat() != 48 {
		t.Fatalf("price after rollback = %v (%v)", rec.Attrs["price"], err)
	}
	check.Commit() // release the read lock before writing again
	// A legal update still passes.
	tx2 := e.Begin()
	if err := e.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
}

func TestDeferredSeesFinalState(t *testing.T) {
	// C7: deferred conditions/actions evaluate against the state at
	// commit, not at the triggering operation.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 1)
	var observed []float64
	e.RegisterCall("observe", func(tx *txn.Txn, b map[string]datum.Value) error {
		rec, err := e.Get(tx, oid)
		if err != nil {
			return err
		}
		observed = append(observed, rec.Attrs["price"].AsFloat())
		return nil
	})
	def := rule.Def{
		Name:   "observe-at-commit",
		Event:  "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "observe"}},
		EC:     "deferred", CA: "immediate",
	}
	if _, err := e.CreateRule(def); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for _, p := range []float64{2, 3, 4} {
		if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(p)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(observed) != 0 {
		t.Fatal("deferred rule fired before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 3 {
		t.Fatalf("deferred firings = %d, want 3 (one per queued event)", len(observed))
	}
	for _, p := range observed {
		if p != 4 {
			t.Fatalf("deferred firing saw price %v, want final state 4", p)
		}
	}
}

func TestDeferredErrorAbortsCommit(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	def := rule.Def{
		Name:      "commit-guard",
		Event:     "modify(Stock)",
		Condition: []string{"select s from Stock s where s.price > 100"},
		Action:    []rule.Step{{Kind: rule.StepAbort}},
		EC:        "deferred", CA: "immediate",
	}
	if _, err := e.CreateRule(def); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(150)}); err != nil {
		t.Fatal(err) // deferred: the operation itself succeeds
	}
	err := tx.Commit()
	if !errors.Is(err, rule.AbortRequested) {
		t.Fatalf("commit error = %v, want AbortRequested", err)
	}
	if tx.State() != txn.Aborted {
		t.Fatalf("txn state = %v, want Aborted", tx.State())
	}
	check := e.Begin()
	defer check.Commit()
	rec, _ := e.Get(check, oid)
	if rec.Attrs["price"].AsFloat() != 48 {
		t.Fatalf("price = %v; deferred abort did not roll back", rec.Attrs["price"])
	}
}

func TestCascadingRules(t *testing.T) {
	// C3: rule A's action modifies data that triggers rule B,
	// producing a tree of nested transactions.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	_, err := e.CreateRule(rule.Def{
		Name:  "audit-on-modify",
		Event: "modify(Stock)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'level1'", "price": "event.new_price"},
		}},
		EC: "immediate", CA: "immediate",
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.CreateRule(rule.Def{
		Name:  "audit-the-audit",
		Event: "create(Audit)",
		Condition: []string{
			"select a from Audit a where event.new_note = 'level1'",
		},
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'level2'"},
		}},
		EC: "immediate", CA: "immediate",
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 2 {
		t.Fatalf("audit rows = %d, want 2 (cascade)", got)
	}
	tx.Commit()
}

func TestCascadeAbortDiscardsSubtree(t *testing.T) {
	// An abort deep in a cascade unwinds every level.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(rule.Def{
		Name:  "level1",
		Event: "modify(Stock)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'level1'"},
		}},
		EC: "immediate", CA: "immediate",
	})
	e.CreateRule(rule.Def{
		Name:   "level2-poison",
		Event:  "create(Audit)",
		Action: []rule.Step{{Kind: rule.StepAbort}},
		EC:     "immediate", CA: "immediate",
	})
	tx := e.Begin()
	err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	if !errors.Is(err, rule.AbortRequested) {
		t.Fatalf("modify error = %v", err)
	}
	tx.Abort()
	if got := auditCount(t, e); got != 0 {
		t.Fatalf("audit rows = %d after cascade abort, want 0", got)
	}
	check := e.Begin()
	defer check.Commit()
	rec, _ := e.Get(check, oid)
	if rec.Attrs["price"].AsFloat() != 48 {
		t.Fatal("trigger effect survived cascade abort")
	}
}

func TestExternalEventRule(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	if err := e.DefineEvent("TradeExecuted", "symbol", "qty"); err != nil {
		t.Fatal(err)
	}
	// Re-definition is rejected.
	if err := e.DefineEvent("TradeExecuted"); err == nil {
		t.Fatal("duplicate event definition accepted")
	}
	e.CreateRule(rule.Def{
		Name:  "log-trades",
		Event: "external(TradeExecuted)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "event.symbol", "price": "event.qty * 1.0"},
		}},
		EC: "immediate", CA: "immediate",
	})
	// Signalling an undefined event fails.
	if err := e.SignalEvent(nil, "Bogus", nil); err == nil {
		t.Fatal("undefined event accepted")
	}
	// Missing declared parameter fails.
	if err := e.SignalEvent(nil, "TradeExecuted", map[string]datum.Value{"symbol": datum.Str("XRX")}); err == nil {
		t.Fatal("missing parameter accepted")
	}
	tx := e.Begin()
	if err := e.SignalEvent(tx, "TradeExecuted", map[string]datum.Value{
		"symbol": datum.Str("XRX"), "qty": datum.Int(500),
	}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("audit rows = %d", got)
	}
	tx.Commit()
}

func TestTemporalRule(t *testing.T) {
	e, clk := newEngine(t)
	defineStockAndAudit(t, e)
	e.CreateRule(rule.Def{
		Name:  "heartbeat",
		Event: "every(10s)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'tick'"},
		}},
		EC: "immediate", CA: "immediate", // no txn: degrades to separate
	})
	clk.Advance(35 * time.Second)
	e.Quiesce()
	if got := auditCount(t, e); got != 3 {
		t.Fatalf("ticks = %d, want 3", got)
	}
	if errs := e.AsyncErrors(); len(errs) != 0 {
		t.Fatalf("async errors: %v", errs)
	}
}

func TestCompositeSequenceRule(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	e.DefineEvent("Open")
	e.DefineEvent("Close")
	e.CreateRule(rule.Def{
		Name:  "session",
		Event: "seq(external(Open), external(Close))",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'session-complete'"},
		}},
		EC: "immediate", CA: "immediate",
	})
	tx := e.Begin()
	e.SignalEvent(tx, "Close", nil) // out of order: ignored
	e.SignalEvent(tx, "Open", nil)
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatal("sequence fired early")
	}
	e.SignalEvent(tx, "Close", nil)
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("audit rows = %d", got)
	}
	tx.Commit()
}

func TestAppRequestAction(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	var got map[string]datum.Value
	e.RegisterAppOperation("display_quote", func(args map[string]datum.Value) (map[string]datum.Value, error) {
		got = args
		return nil, nil
	})
	e.CreateRule(rule.Def{
		Name:  "ticker-window",
		Event: "modify(Stock)",
		Action: []rule.Step{{
			Kind: rule.StepRequest, Op: "display_quote",
			Args: map[string]string{"price": "event.new_price", "markup": "event.new_price * 1.1"},
		}},
		EC: "separate", CA: "immediate", // the paper's display-rule coupling
	})
	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	tx.Commit()
	e.Quiesce()
	if got == nil {
		t.Fatal("application operation not invoked")
	}
	if got["price"].AsFloat() != 50 || got["markup"].AsFloat() != 55.00000000000001 && got["markup"].AsFloat() != 55 {
		t.Fatalf("args = %v", got)
	}
	if errs := e.AsyncErrors(); len(errs) != 0 {
		t.Fatalf("async errors: %v", errs)
	}
}

func TestSignalStepCascade(t *testing.T) {
	// A rule action signals an external event, which triggers a
	// second rule: flow of control through events (§4.2).
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.DefineEvent("PriceAlert", "level")
	e.CreateRule(rule.Def{
		Name:  "alert-on-rise",
		Event: "modify(Stock)",
		Action: []rule.Step{{
			Kind: rule.StepSignal, Event: "PriceAlert",
			Args: map[string]string{"level": "event.new_price"},
		}},
		EC: "immediate", CA: "immediate",
	})
	e.CreateRule(rule.Def{
		Name:  "log-alert",
		Event: "external(PriceAlert)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'alert'", "price": "event.level"},
		}},
		EC: "immediate", CA: "immediate",
	})
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(60)}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("audit rows = %d", got)
	}
	tx.Commit()
}

func TestEnableDisableAndManualFire(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(auditRule("audit", "immediate", "immediate"))
	if err := e.DisableRule("audit"); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatal("disabled rule fired automatically")
	}
	// Manual fire works even when disabled (§2.2: disable only stops
	// automatic firing).
	if err := e.FireRule(tx, "audit", map[string]datum.Value{"new_price": datum.Float(99)}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatal("manual fire did not run")
	}
	// tx holds the fired rule's read lock; EnableRule (a rule update,
	// write lock) would block until it ends. Commit first.
	tx.Commit()
	if err := e.EnableRule("audit"); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin()
	e.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(51)})
	if got := auditCountIn(t, e, tx2); got != 2 {
		t.Fatal("re-enabled rule did not fire")
	}
	tx2.Commit()
	if err := e.FireRule(nil, "nope", nil); err == nil {
		t.Fatal("firing unknown rule should fail")
	}
}

func TestDeleteRuleStopsFiring(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(auditRule("audit", "immediate", "immediate"))
	if err := e.DeleteRule("audit"); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatal("deleted rule fired")
	}
	tx.Commit()
	if err := e.DeleteRule("audit"); err == nil {
		t.Fatal("double delete should fail")
	}
	if e.Conditions.NodeCount() != 0 {
		t.Fatal("condition graph not cleaned up")
	}
}

func TestUpdateRuleReplacesInPlace(t *testing.T) {
	// §2.2 "modify": the rule keeps its object identity but its
	// event, condition, and action change atomically.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	r1, err := e.CreateRule(auditRule("audit", "immediate", "immediate"))
	if err != nil {
		t.Fatal(err)
	}
	// Change the rule to only fire at >= 100.
	def := auditRule("audit", "immediate", "immediate")
	def.Condition = []string{"select s from Stock s where event.new_price >= 100"}
	r2, err := e.UpdateRule(def)
	if err != nil {
		t.Fatal(err)
	}
	if r2.OID != r1.OID {
		t.Fatalf("update changed the rule's OID: %v -> %v", r1.OID, r2.OID)
	}
	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	if got := auditCountIn(t, e, tx); got != 0 {
		t.Fatal("updated rule fired below its new threshold")
	}
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(150)})
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatal("updated rule did not fire above its new threshold")
	}
	tx.Commit()
	// The persisted definition is the new one.
	rec, err := e.Get(func() *txn.Txn { c := e.Begin(); t.Cleanup(func() { c.Commit() }); return c }(), r1.OID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.Attrs["def"].AsString(), "100") {
		t.Fatalf("persisted def = %s", rec.Attrs["def"].AsString())
	}
	// Updating an unknown rule fails.
	if _, err := e.UpdateRule(auditRule("nope", "immediate", "immediate")); err == nil {
		t.Fatal("update of unknown rule accepted")
	}
	// An update that fails to compile leaves the old rule intact.
	bad := auditRule("audit", "bogus-coupling", "immediate")
	if _, err := e.UpdateRule(bad); err == nil {
		t.Fatal("bad update accepted")
	}
	tx2 := e.Begin()
	e.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(200)})
	if got := auditCountIn(t, e, tx2); got != 2 {
		t.Fatal("rule lost after failed update")
	}
	tx2.Commit()
}

func TestDerivedEventSpec(t *testing.T) {
	// §2.1: omitted event -> derived from the condition's footprint.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	r, err := e.CreateRule(rule.Def{
		Name:      "derived",
		Condition: []string{"select s from Stock s where s.price > 100"},
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'expensive'"},
		}},
		EC: "immediate", CA: "immediate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Derived || r.EventString() != "anyop(Stock)" {
		t.Fatalf("derived spec = %q (derived=%v)", r.EventString(), r.Derived)
	}
	// Any Stock operation triggers it — here a create.
	tx := e.Begin()
	if _, err := e.Create(tx, "Stock", map[string]datum.Value{
		"symbol": datum.Str("IBM"), "price": datum.Float(120),
	}); err != nil {
		t.Fatal(err)
	}
	if got := auditCountIn(t, e, tx); got != 1 {
		t.Fatalf("audit rows = %d", got)
	}
	tx.Commit()
}

func TestRulesPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewVirtual(epoch)
	e, err := Open(Options{Dir: dir, NoSync: true, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.DefineClass(tx, stockClass); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineClass(tx, auditClass); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	oid, _ := func() (datum.OID, error) {
		tx := e.Begin()
		defer tx.Commit()
		return e.Create(tx, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX"), "price": datum.Float(48)})
	}()
	if _, err := e.CreateRule(auditRule("audit", "immediate", "immediate")); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineEvent("Custom", "x"); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(Options{Dir: dir, NoSync: true, Clock: clock.NewVirtual(epoch)})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if _, ok := e2.Rules.GetRule("audit"); !ok {
		t.Fatal("rule lost across reopen")
	}
	if _, ok := e2.EventDefined("Custom"); !ok {
		t.Fatal("event definition lost across reopen")
	}
	// The restored rule fires.
	tx2 := e2.Begin()
	if err := e2.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	res, err := e2.Query(tx2, "select count(*) as n from Audit a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatal("restored rule did not fire")
	}
	tx2.Commit()
}

func TestRuleLocking(t *testing.T) {
	// C9: firing holds a read lock on the rule object; a concurrent
	// rule update (delete) blocks until the lock is released.
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	e.CreateRule(auditRule("audit", "immediate", "immediate"))
	oid := createStock(t, e, "XRX", 48)

	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)}); err != nil {
		t.Fatal(err)
	}
	// The firing's read lock was inherited by tx (the condition
	// subtransaction committed into it), so DeleteRule's write lock
	// must wait for tx.
	done := make(chan error, 1)
	go func() { done <- e.DeleteRule("audit") }()
	select {
	case err := <-done:
		t.Fatalf("DeleteRule did not block on the firing's read lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	tx.Commit()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	e, _ := newEngine(t)
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	e.CreateRule(auditRule("audit", "immediate", "immediate"))
	tx := e.Begin()
	e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(50)})
	tx.Commit()
	s := e.Stats()
	if s.Rules.Signals == 0 || s.Rules.ImmediateFirings != 1 ||
		s.Rules.ConditionsSatisfied != 1 || s.Rules.ActionsExecuted != 1 {
		t.Fatalf("rule stats = %+v", s.Rules)
	}
	if s.LiveTxns != 0 {
		t.Fatalf("live txns = %d", s.LiveTxns)
	}
}

func TestEngineClockAndAppOpRegistry(t *testing.T) {
	e, clk := newEngine(t)
	if e.Clock() != clk {
		t.Fatal("Clock() did not return the injected clock")
	}
	defineStockAndAudit(t, e)
	oid := createStock(t, e, "XRX", 48)
	calls := 0
	e.RegisterAppOperation("op", func(map[string]datum.Value) (map[string]datum.Value, error) {
		calls++
		return nil, nil
	})
	if _, err := e.CreateRule(rule.Def{
		Name:   "req",
		Event:  "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepRequest, Op: "op", Args: map[string]string{}}},
		EC:     "immediate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if err := e.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(1)}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	// After unregistering, the request step fails (no fallback).
	e.UnregisterAppOperation("op")
	tx2 := e.Begin()
	if err := e.Modify(tx2, oid, map[string]datum.Value{"price": datum.Float(2)}); err == nil {
		t.Fatal("request to unregistered operation succeeded")
	}
	tx2.Abort()
}

func TestEngineDropClass(t *testing.T) {
	e, _ := newEngine(t)
	tx := e.Begin()
	if err := e.DefineClass(tx, object.Class{Name: "Gone"}); err != nil {
		t.Fatal(err)
	}
	if err := e.DropClass(tx, "Gone"); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2 := e.Begin()
	defer tx2.Commit()
	if _, err := e.Create(tx2, "Gone", nil); err == nil {
		t.Fatal("create in dropped class succeeded")
	}
}
