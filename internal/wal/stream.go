// Replication stream support: reading durable frames by LSN.
//
// A replication primary ships its log to followers straight out of
// the group-commit machinery: a record is streamable the moment the
// flush leader's fsync covers it (the `flushed` frontier), so the
// stream needs no second bookkeeping — ReadDurable serves complete
// frames below the frontier and WaitDurable parks on the same
// condition variable the flush leader already broadcasts.
//
// Truncation contract: TruncateBefore swaps the backing file under
// the append lock, closing the old handle. A reader that raced the
// swap sees its ReadAt fail on the closed handle; ReadDurable then
// re-checks the base under the lock and either retries against the
// fresh handle (its resume point survived the truncation — the bytes
// at a logical LSN are identical in both files) or returns the typed
// ErrTruncated, telling the follower to re-bootstrap from the
// snapshot chain. A reader never sees a torn or silently wrong frame.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
)

// ErrTruncated is returned by ReadDurable when the requested resume
// LSN is below the log's base: TruncateBefore dropped that prefix, so
// the reader cannot resume from the log and must re-bootstrap from a
// checkpoint snapshot chain instead.
var ErrTruncated = errors.New("wal: resume LSN below log base (truncated)")

// ErrWaitCanceled is returned by WaitDurable when its stop channel
// fires before any new bytes become durable.
var ErrWaitCanceled = errors.New("wal: wait canceled")

// Frame is one complete log record as handed to a stream reader.
type Frame struct {
	LSN     LSN
	Payload []byte
}

// Flushed returns the durable frontier: every byte below it is on
// stable storage (or, for a NoSync log, has been through a Sync call,
// which is as durable as that log ever gets). Records at or above it
// may still be volatile and must not be streamed.
func (l *Log) Flushed() LSN {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.flushed
}

// WaitDurable blocks until the durable frontier passes from, then
// returns the new frontier. It returns ErrClosed once the log closes
// and ErrWaitCanceled if stop fires first; in both cases the returned
// LSN is the frontier at that moment.
func (l *Log) WaitDurable(from LSN, stop <-chan struct{}) (LSN, error) {
	var aborted atomic.Bool
	if stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-stop:
				aborted.Store(true)
				l.fmu.Lock()
				l.fcond.Broadcast()
				l.fmu.Unlock()
			case <-done:
			}
		}()
	}
	l.fmu.Lock()
	defer l.fmu.Unlock()
	for l.flushed <= from && !l.closedFlag.Load() && !aborted.Load() {
		l.fcond.Wait()
	}
	if l.flushed > from {
		return l.flushed, nil
	}
	if l.closedFlag.Load() {
		return l.flushed, ErrClosed
	}
	return l.flushed, ErrWaitCanceled
}

// ReadDurable returns complete frames starting at LSN from, reading
// no further than the durable frontier and stopping after roughly
// maxBytes of payload (at least one frame is returned if any is
// available; maxBytes <= 0 selects a 1 MiB default). The second
// result is the LSN to resume from. An empty batch with a nil error
// means nothing durable is available at from yet.
//
// If from is below the log base — the prefix was truncated away —
// ReadDurable returns ErrTruncated, including when a concurrent
// TruncateBefore swapped the file mid-read.
func (l *Log) ReadDurable(from LSN, maxBytes int) ([]Frame, LSN, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	limit := l.Flushed()
	if from >= limit {
		return nil, from, nil
	}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil, from, ErrClosed
		}
		if from < l.base {
			l.mu.Unlock()
			return nil, from, ErrTruncated
		}
		base, f := l.base, l.f
		l.mu.Unlock()
		frames, next, err := readFrameRange(f, base, from, limit, maxBytes)
		if err == nil {
			return frames, next, nil
		}
		lastErr = err
		// The read likely raced TruncateBefore's file swap: the old
		// handle was closed under l.mu once the rename landed. Loop to
		// re-check the base — a resume point that fell below the new
		// base turns into the clean ErrTruncated above; one that
		// survived retries against the fresh handle (truncation never
		// changes the bytes at a surviving LSN).
	}
	return nil, from, fmt.Errorf("wal: read durable at %d: %w", from, lastErr)
}

// readFrameRange reads frames [from, limit) from a snapshot of the
// backing file taken under the log mutex. Any I/O or checksum error
// aborts the whole batch; the caller decides whether it was a swap
// race worth retrying.
func readFrameRange(f *os.File, base, from, limit LSN, maxBytes int) ([]Frame, LSN, error) {
	var frames []Frame
	var hdr [frameOverhead]byte
	off := from
	total := 0
	for off < limit && total < maxBytes {
		pos := int64(off-base) + headerSize
		if _, err := f.ReadAt(hdr[:], pos); err != nil {
			return nil, from, err
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if off+LSN(frameOverhead)+LSN(length) > limit {
			// A frame straddling the durable frontier: its tail is not
			// fsynced yet, so it ships in a later batch.
			break
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, pos+frameOverhead); err != nil {
			return nil, from, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, from, fmt.Errorf("wal: bad frame crc at lsn %d", off)
		}
		frames = append(frames, Frame{LSN: off, Payload: payload})
		off += LSN(frameOverhead) + LSN(length)
		total += frameOverhead + int(length)
	}
	return frames, off, nil
}

// InitFile creates an empty log file at path whose header names base
// as the first LSN, so the first record appended lands exactly at
// base. Replication followers use it to align their local log with
// the primary's logical LSNs before opening their store over it. It
// fails if path already exists.
func InitFile(path string, base LSN) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: init %s: %w", path, err)
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint64(hdr[8:16], uint64(base))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: init header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: init sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: init close: %w", err)
	}
	return syncDir(filepath.Dir(path))
}
