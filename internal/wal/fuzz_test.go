package wal

// FuzzReplay feeds arbitrary bytes to the WAL open/replay path. The
// log treats its file as untrusted after a crash, so any input must
// either open (replaying the longest valid prefix) or fail with an
// error — never panic. Opens that succeed must also append cleanly
// after the replayed prefix.

import (
	"os"
	"path/filepath"
	"testing"
)

func FuzzReplay(f *testing.F) {
	// Seeds: an empty file, a valid two-record log, a truncated-base
	// log (post-TruncateBefore image), a bad-magic header, and a torn
	// frame at the tail.
	f.Add([]byte{})
	valid := buildLog(f, [][]byte{[]byte("alpha"), []byte("beta-record")}, 0)
	f.Add(valid)
	f.Add(buildLog(f, [][]byte{[]byte("suffix")}, 2))
	bad := append([]byte(nil), valid...)
	copy(bad, "notawal!")
	f.Add(bad)
	f.Add(append(append([]byte(nil), valid...), 0x00, 0x00, 0x01, 0x00, 0xde))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path, Options{NoSync: true})
		if err != nil {
			return
		}
		defer l.Close()
		var prev LSN
		err = l.Replay(func(lsn LSN, payload []byte) error {
			if lsn < prev {
				t.Fatalf("replay LSNs went backwards: %d after %d", lsn, prev)
			}
			prev = lsn
			return nil
		})
		if err != nil {
			t.Fatalf("replay of opened log failed: %v", err)
		}
		// The log must stay writable past whatever prefix survived.
		lsn, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("append after replay failed: %v", err)
		}
		if lsn < prev {
			t.Fatalf("fresh append LSN %d below replayed tail %d", lsn, prev)
		}
	})
}

// buildLog writes payloads through the real append path (after
// truncating `trunc` leading LSN bytes when trunc > 0) and returns the
// resulting file image for use as a fuzz seed.
func buildLog(f *testing.F, payloads [][]byte, trunc LSN) []byte {
	f.Helper()
	dir := f.TempDir()
	path := filepath.Join(dir, "wal")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			f.Fatal(err)
		}
	}
	if trunc > 0 {
		if _, err := l.TruncateBefore(trunc); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return buf
}
