// Package wal implements the write-ahead log that makes top-level
// transaction commits durable. The log is a single append-only file:
// a fixed header naming the base LSN, then length-prefixed,
// checksummed records. Recovery replays complete records in order and
// truncates at the first torn or corrupt record (standard redo-only
// recovery: only committed top-level effects are ever logged, so no
// undo pass is needed).
//
// LSNs are logical: they keep growing across checkpoint truncations.
// The file header records the LSN of the first record still present
// (the base), so a record with LSN x lives at file offset
// x - base + headerSize. TruncateBefore(lsn) drops the prefix below
// lsn by rewriting the file with a new base; the LSNs of surviving
// records do not change.
//
// File layout:
//
//	[8]byte  magic "hipacwl1"
//	uint64   base LSN (big-endian)
//	records...
//
// Record framing:
//
//	uint32 length (big-endian, payload bytes)
//	uint32 CRC-32 (IEEE) of the payload
//	payload
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/obs"
)

// LSN is a logical log sequence number. It equals the total number of
// frame bytes ever appended before the record, so it is monotone for
// the life of the database and survives checkpoint truncation.
type LSN uint64

const (
	// headerSize is the fixed file header: 8-byte magic + 8-byte base LSN.
	headerSize = 16
	// frameOverhead is the per-record framing cost (length + CRC).
	frameOverhead = 8
)

var magic = [8]byte{'h', 'i', 'p', 'a', 'c', 'w', 'l', '1'}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is an append-only write-ahead log. It is safe for concurrent
// use.
//
// Durability uses group commit: concurrent committers append their
// records, then park in SyncTo on the flush state; the first one in
// becomes the leader, fsyncs once for everyone whose record is
// already in the file, and wakes the whole batch. Committers arriving
// while a flush is in flight form the next batch, so at any moment at
// most one fsync is outstanding and N concurrent commits cost far
// fewer than N fsyncs.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	base   LSN // LSN of the first record in the file
	end    LSN // LSN at which the next record will be written
	closed bool
	sync   bool          // fsync on Sync() when true
	window time.Duration // leader dwell before snapshotting the batch
	obsm   *obs.Metrics  // nil-safe fsync latency + group size observer

	// Group-flush state, guarded by fmu (never held across the fsync
	// itself). flushed is the durable prefix; flushing marks a leader
	// mid-fsync; fgen bumps after every flush attempt so parked
	// followers know their flush finished; ferr is the most recent
	// flush attempt's error (nil after a success); pending counts
	// SyncTo calls waiting for durability.
	fmu      sync.Mutex
	fcond    *sync.Cond
	flushed  LSN
	flushing bool
	fgen     uint64
	ferr     error
	pending  int

	// nFsyncs counts physical fsync calls; nSyncReqs counts Sync/SyncTo
	// requests. nFsyncs/nSyncReqs < 1 means group commit is batching.
	nFsyncs   atomic.Uint64
	nSyncReqs atomic.Uint64

	// closedFlag mirrors closed for waiters parked on fcond (stream
	// readers in WaitDurable), which must not take mu while holding fmu
	// — Close holds mu when it broadcasts.
	closedFlag atomic.Bool
}

// Options configures a Log.
type Options struct {
	// NoSync disables fsync; Sync() becomes a no-op flush. Useful for
	// benchmarks and tests where durability across OS crashes is not
	// required.
	NoSync bool
	// GroupWindow, when >0, makes a group-flush leader dwell that long
	// before snapshotting the batch, widening groups under load. The
	// dwell is adaptive: it applies only when followers are already
	// queuing behind the leader, so a lone committer pays no added
	// latency. 0 flushes as soon as the leader runs.
	GroupWindow time.Duration
	// Obs, when non-nil, receives fsync latencies and group sizes.
	Obs *obs.Metrics
}

// Open opens (creating if necessary) the log at path, scans it for the
// end of the valid prefix, and truncates any torn tail so subsequent
// appends start from a clean state.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, sync: !opts.NoSync, window: opts.GroupWindow, obsm: opts.Obs}
	l.fcond = sync.NewCond(&l.fmu)
	if err := l.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	end, err := l.scanEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(l.phys(end)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(l.phys(end), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.end = end
	return l, nil
}

// readHeader loads (or, for a fresh file, writes) the file header and
// sets l.base. A file shorter than the header is treated as empty: a
// crash can tear the header of a log that never held a record, and in
// that case no durable data is lost by rewriting it.
func (l *Log) readHeader() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat: %w", err)
	}
	if info.Size() < headerSize {
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("wal: init: %w", err)
		}
		var hdr [headerSize]byte
		copy(hdr[:8], magic[:])
		if _, err := l.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("wal: write header: %w", err)
		}
		l.base = 0
		return nil
	}
	var hdr [headerSize]byte
	if _, err := l.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: read header: %w", err)
	}
	if [8]byte(hdr[:8]) != magic {
		return fmt.Errorf("wal: %s: bad magic", l.path)
	}
	l.base = LSN(binary.BigEndian.Uint64(hdr[8:16]))
	return nil
}

// phys maps a logical LSN to its byte offset in the current file.
func (l *Log) phys(lsn LSN) int64 {
	return int64(lsn-l.base) + headerSize
}

// scanEnd walks the log from the base, returning the LSN just past
// the last complete, checksum-valid record.
func (l *Log) scanEnd() (LSN, error) {
	info, err := l.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: stat: %w", err)
	}
	size := info.Size()
	off := int64(headerSize)
	var hdr [frameOverhead]byte
	for off+frameOverhead <= size {
		if _, err := l.f.ReadAt(hdr[:], off); err != nil {
			return 0, fmt.Errorf("wal: read header at %d: %w", off, err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if off+frameOverhead+int64(length) > size {
			break // torn record
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+frameOverhead); err != nil {
			return 0, fmt.Errorf("wal: read payload at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: end of valid prefix
		}
		off += frameOverhead + int64(length)
	}
	return l.base + LSN(off-headerSize), nil
}

// Append writes one record and returns its LSN. The record is not
// durable until Sync returns.
func (l *Log) Append(payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.end
	frame := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameOverhead:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.end += LSN(len(frame))
	failpoint.Hit("wal.afterAppend")
	return lsn, nil
}

// Sync makes all records appended so far durable. Equivalent to
// SyncTo(End()): the call joins the current group flush.
func (l *Log) Sync() error {
	return l.SyncTo(l.End())
}

// SyncTo blocks until every byte below target is durable. Concurrent
// callers batch: one leader fsyncs for the whole group while the rest
// park on the flush generation; a single flush therefore acknowledges
// many commits. A nil return guarantees the caller's record (ending
// at target) is on stable storage.
func (l *Log) SyncTo(target LSN) error {
	l.nSyncReqs.Add(1)
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !l.sync {
		// Durability is a no-op, but the durable frontier still
		// advances so stream readers (ReadDurable/WaitDurable) see the
		// records: "flushed" means "as durable as this log ever gets".
		end := l.End()
		l.fmu.Lock()
		if end > l.flushed {
			l.flushed = end
			l.fcond.Broadcast()
		}
		l.fmu.Unlock()
		return nil
	}
	l.fmu.Lock()
	defer l.fmu.Unlock()
	l.pending++
	defer func() { l.pending-- }()
	for l.flushed < target {
		if l.flushing {
			// Follower: park until the in-flight flush attempt
			// finishes, then re-check the durable prefix.
			gen := l.fgen
			for l.fgen == gen {
				l.fcond.Wait()
			}
			if l.ferr != nil && l.flushed < target {
				return l.ferr
			}
			continue
		}
		// Leader: flush once for every record already in the file.
		// The batch is everyone pending now; late arrivals form the
		// next batch (they observe flushing == true and park). The
		// group-window dwell is adaptive: a leader dwells only when
		// followers are already queuing (pending > 1), so widening
		// batches under load never taxes a lone committer.
		l.flushing = true
		group := l.pending
		l.fmu.Unlock()
		end, err := l.flushOnce(group > 1)
		l.fmu.Lock()
		l.flushing = false
		l.fgen++
		l.ferr = err
		if err == nil {
			if end > l.flushed {
				l.flushed = end
			}
			l.obsm.ObserveN(obs.HWALGroup, uint64(group))
		}
		l.fcond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// flushOnce performs one physical flush: optionally dwell for the
// group window (only when the leader saw followers queuing), snapshot
// the append frontier, fsync, and report the frontier that is now
// durable. Runs outside both mutexes so concurrent Appends (growing
// the next batch) are never blocked by the disk.
func (l *Log) flushOnce(dwell bool) (LSN, error) {
	if dwell && l.window > 0 {
		time.Sleep(l.window)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	end := l.end
	f := l.f
	l.mu.Unlock()
	l.nFsyncs.Add(1)
	tm := l.obsm.Timer(obs.HWALSync)
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: sync: %w", err)
	}
	tm.Done()
	failpoint.Hit("wal.afterFsync")
	return end, nil
}

// Fsyncs returns the number of physical fsync calls issued.
func (l *Log) Fsyncs() uint64 { return l.nFsyncs.Load() }

// SyncRequests returns the number of durability requests (Sync and
// SyncTo calls). With group commit, Fsyncs()/SyncRequests() < 1.
func (l *Log) SyncRequests() uint64 { return l.nSyncReqs.Load() }

// End returns the LSN one past the last appended record.
func (l *Log) End() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Base returns the LSN of the first record still present in the file.
// Records below Base have been dropped by TruncateBefore and must be
// covered by a checkpoint snapshot.
func (l *Log) Base() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Close syncs and closes the log file, waking any stream readers
// parked in WaitDurable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var firstErr error
	if l.sync {
		firstErr = l.f.Sync()
	}
	if err := l.f.Close(); firstErr == nil {
		firstErr = err
	}
	l.closedFlag.Store(true)
	l.fmu.Lock()
	l.fcond.Broadcast()
	l.fmu.Unlock()
	return firstErr
}

// Replay calls fn for every complete valid record from the base of
// the log, in append order. It stops early if fn returns an error and
// returns that error.
func (l *Log) Replay(fn func(lsn LSN, payload []byte) error) error {
	l.mu.Lock()
	base, end := l.base, l.end
	f := l.f
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	off := base
	var hdr [frameOverhead]byte
	for off < end {
		pos := int64(off-base) + headerSize
		if _, err := f.ReadAt(hdr[:], pos); err != nil {
			return fmt.Errorf("wal: replay header at %d: %w", off, err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, pos+frameOverhead); err != nil {
			return fmt.Errorf("wal: replay payload at %d: %w", off, err)
		}
		if err := fn(off, payload); err != nil {
			return err
		}
		off += LSN(frameOverhead + length)
	}
	return nil
}

// TruncateBefore drops every record below lsn and returns the number
// of log bytes reclaimed. Records at or above lsn keep their LSNs.
// Used after a checkpoint: the snapshot covers every record below its
// watermark, so the prefix is dead weight.
//
// The prefix is dropped by copying the surviving suffix into a temp
// file with a new base header and atomically renaming it over the
// log. Appends and group flushes proceed before and after, but not
// during, the copy: TruncateBefore takes flush leadership (so no
// fsync is in flight on the handle being swapped out) and holds the
// append lock for the duration of the copy, which only covers records
// appended since the checkpoint scan.
func (l *Log) TruncateBefore(lsn LSN) (uint64, error) {
	// Become the flush leader: wait out any in-flight fsync, then mark
	// flushing so SyncTo callers park until the swap is complete.
	l.fmu.Lock()
	for l.flushing {
		gen := l.fgen
		for l.fgen == gen {
			l.fcond.Wait()
		}
	}
	l.flushing = true
	l.fmu.Unlock()

	newEnd, reclaimed, err := l.truncateLocked(lsn)

	l.fmu.Lock()
	l.flushing = false
	l.fgen++
	if err == nil {
		l.ferr = nil
		// The rewritten file was fsynced in full before the rename, so
		// everything up to the copy frontier is durable.
		if newEnd > l.flushed {
			l.flushed = newEnd
		}
	}
	l.fcond.Broadcast()
	l.fmu.Unlock()
	return reclaimed, err
}

// truncateLocked rewrites the log with base lsn under the append
// lock, returning the append frontier at swap time (durable in the
// new file) and the bytes reclaimed.
func (l *Log) truncateLocked(lsn LSN) (LSN, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	if lsn > l.end {
		lsn = l.end
	}
	if lsn <= l.base {
		return 0, 0, nil // nothing below lsn left to drop
	}
	tmp := l.path + ".tmp"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: truncate: %w", err)
	}
	fail := func(e error) (LSN, uint64, error) {
		nf.Close()
		os.Remove(tmp)
		return 0, 0, e
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic[:])
	binary.BigEndian.PutUint64(hdr[8:16], uint64(lsn))
	if _, err := nf.Write(hdr[:]); err != nil {
		return fail(fmt.Errorf("wal: truncate header: %w", err))
	}
	suffix := io.NewSectionReader(l.f, l.phys(lsn), int64(l.end-lsn))
	if _, err := io.Copy(nf, suffix); err != nil {
		return fail(fmt.Errorf("wal: truncate copy: %w", err))
	}
	if l.sync {
		if err := nf.Sync(); err != nil {
			return fail(fmt.Errorf("wal: truncate sync: %w", err))
		}
	}
	if err := os.Rename(tmp, l.path); err != nil {
		return fail(fmt.Errorf("wal: truncate rename: %w", err))
	}
	// The swap is committed: nf is the log from here on, even if the
	// directory sync below fails.
	old := l.f
	l.f = nf
	old.Close()
	reclaimed := uint64(lsn - l.base)
	l.base = lsn
	if l.sync {
		if err := syncDir(filepath.Dir(l.path)); err != nil {
			return l.end, reclaimed, err
		}
	}
	return l.end, reclaimed, nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
