// Package wal implements the write-ahead log that makes top-level
// transaction commits durable. The log is a single append-only file of
// length-prefixed, checksummed records. Recovery replays complete
// records in order and truncates at the first torn or corrupt record
// (standard redo-only recovery: only committed top-level effects are
// ever logged, so no undo pass is needed).
//
// Record framing:
//
//	uint32 length (big-endian, payload bytes)
//	uint32 CRC-32 (IEEE) of the payload
//	payload
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LSN is a log sequence number: the byte offset of a record's frame in
// the log file.
type LSN uint64

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Log is an append-only write-ahead log. It is safe for concurrent
// use.
//
// Durability uses group commit: concurrent committers append their
// records, then park in SyncTo on the flush state; the first one in
// becomes the leader, fsyncs once for everyone whose record is
// already in the file, and wakes the whole batch. Committers arriving
// while a flush is in flight form the next batch, so at any moment at
// most one fsync is outstanding and N concurrent commits cost far
// fewer than N fsyncs.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	end    LSN // offset at which the next record will be written
	closed bool
	sync   bool          // fsync on Sync() when true
	window time.Duration // leader dwell before snapshotting the batch
	obsm   *obs.Metrics  // nil-safe fsync latency + group size observer

	// Group-flush state, guarded by fmu (never held across the fsync
	// itself). flushed is the durable prefix; flushing marks a leader
	// mid-fsync; fgen bumps after every flush attempt so parked
	// followers know their flush finished; ferr is the most recent
	// flush attempt's error (nil after a success); pending counts
	// SyncTo calls waiting for durability.
	fmu      sync.Mutex
	fcond    *sync.Cond
	flushed  LSN
	flushing bool
	fgen     uint64
	ferr     error
	pending  int

	// nFsyncs counts physical fsync calls; nSyncReqs counts Sync/SyncTo
	// requests. nFsyncs/nSyncReqs < 1 means group commit is batching.
	nFsyncs   atomic.Uint64
	nSyncReqs atomic.Uint64
}

// Options configures a Log.
type Options struct {
	// NoSync disables fsync; Sync() becomes a no-op flush. Useful for
	// benchmarks and tests where durability across OS crashes is not
	// required.
	NoSync bool
	// GroupWindow, when >0, makes a group-flush leader dwell that long
	// before snapshotting the batch, widening groups under load at the
	// cost of added latency. 0 flushes as soon as the leader runs.
	GroupWindow time.Duration
	// Obs, when non-nil, receives fsync latencies and group sizes.
	Obs *obs.Metrics
}

// Open opens (creating if necessary) the log at path, scans it for the
// end of the valid prefix, and truncates any torn tail so subsequent
// appends start from a clean state.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, sync: !opts.NoSync, window: opts.GroupWindow, obsm: opts.Obs}
	l.fcond = sync.NewCond(&l.fmu)
	end, err := l.scanEnd()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(end)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(int64(end), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.end = end
	return l, nil
}

// scanEnd walks the log from the start, returning the offset just past
// the last complete, checksum-valid record.
func (l *Log) scanEnd() (LSN, error) {
	info, err := l.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: stat: %w", err)
	}
	size := info.Size()
	var off int64
	var hdr [8]byte
	for off+8 <= size {
		if _, err := l.f.ReadAt(hdr[:], off); err != nil {
			return 0, fmt.Errorf("wal: read header at %d: %w", off, err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if off+8+int64(length) > size {
			break // torn record
		}
		payload := make([]byte, length)
		if _, err := l.f.ReadAt(payload, off+8); err != nil {
			return 0, fmt.Errorf("wal: read payload at %d: %w", off, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: end of valid prefix
		}
		off += 8 + int64(length)
	}
	return LSN(off), nil
}

// Append writes one record and returns its LSN. The record is not
// durable until Sync returns.
func (l *Log) Append(payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.end
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.end += LSN(len(frame))
	return lsn, nil
}

// Sync makes all records appended so far durable. Equivalent to
// SyncTo(End()): the call joins the current group flush.
func (l *Log) Sync() error {
	return l.SyncTo(l.End())
}

// SyncTo blocks until every byte below target is durable. Concurrent
// callers batch: one leader fsyncs for the whole group while the rest
// park on the flush generation; a single flush therefore acknowledges
// many commits. A nil return guarantees the caller's record (ending
// at target) is on stable storage.
func (l *Log) SyncTo(target LSN) error {
	l.nSyncReqs.Add(1)
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !l.sync {
		return nil
	}
	l.fmu.Lock()
	defer l.fmu.Unlock()
	l.pending++
	defer func() { l.pending-- }()
	for l.flushed < target {
		if l.flushing {
			// Follower: park until the in-flight flush attempt
			// finishes, then re-check the durable prefix.
			gen := l.fgen
			for l.fgen == gen {
				l.fcond.Wait()
			}
			if l.ferr != nil && l.flushed < target {
				return l.ferr
			}
			continue
		}
		// Leader: flush once for every record already in the file.
		// The batch is everyone pending now; late arrivals form the
		// next batch (they observe flushing == true and park).
		l.flushing = true
		group := l.pending
		l.fmu.Unlock()
		end, err := l.flushOnce()
		l.fmu.Lock()
		l.flushing = false
		l.fgen++
		l.ferr = err
		if err == nil {
			if end > l.flushed {
				l.flushed = end
			}
			l.obsm.ObserveN(obs.HWALGroup, uint64(group))
		}
		l.fcond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// flushOnce performs one physical flush: optionally dwell for the
// group window, snapshot the append frontier, fsync, and report the
// frontier that is now durable. Runs outside both mutexes so
// concurrent Appends (growing the next batch) are never blocked by
// the disk.
func (l *Log) flushOnce() (LSN, error) {
	if l.window > 0 {
		time.Sleep(l.window)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	end := l.end
	f := l.f
	l.mu.Unlock()
	l.nFsyncs.Add(1)
	tm := l.obsm.Timer(obs.HWALSync)
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: sync: %w", err)
	}
	tm.Done()
	return end, nil
}

// Fsyncs returns the number of physical fsync calls issued.
func (l *Log) Fsyncs() uint64 { return l.nFsyncs.Load() }

// SyncRequests returns the number of durability requests (Sync and
// SyncTo calls). With group commit, Fsyncs()/SyncRequests() < 1.
func (l *Log) SyncRequests() uint64 { return l.nSyncReqs.Load() }

// End returns the LSN one past the last appended record.
func (l *Log) End() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var firstErr error
	if l.sync {
		firstErr = l.f.Sync()
	}
	if err := l.f.Close(); firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Replay calls fn for every complete valid record from the start of
// the log, in append order. It stops early if fn returns an error and
// returns that error.
func (l *Log) Replay(fn func(lsn LSN, payload []byte) error) error {
	l.mu.Lock()
	end := l.end
	f := l.f
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	var off LSN
	var hdr [8]byte
	for off < end {
		if _, err := f.ReadAt(hdr[:], int64(off)); err != nil {
			return fmt.Errorf("wal: replay header at %d: %w", off, err)
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, int64(off)+8); err != nil {
			return fmt.Errorf("wal: replay payload at %d: %w", off, err)
		}
		if err := fn(off, payload); err != nil {
			return err
		}
		off += LSN(8 + length)
	}
	return nil
}

// Reset truncates the log to empty. Used after writing a checkpoint
// snapshot: records folded into the snapshot are no longer needed.
// Must not run concurrently with commits (callers quiesce first).
func (l *Log) Reset() error {
	// fmu before mu, matching SyncTo's lock order. The durable prefix
	// restarts at zero with the file, else stale flushed offsets would
	// satisfy post-reset SyncTo targets without an fsync.
	l.fmu.Lock()
	l.flushed = 0
	l.fmu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	l.end = 0
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: reset sync: %w", err)
		}
	}
	return nil
}
