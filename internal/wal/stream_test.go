package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openTestLog(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(filepath.Join(dir, "wal"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestReadDurableBasic(t *testing.T) {
	l := openTestLog(t, t.TempDir(), Options{})
	defer l.Close()
	var want []LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(binary.BigEndian.AppendUint64(nil, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, lsn)
	}
	// Nothing synced yet: the durable frontier hides every record.
	frames, next, err := l.ReadDurable(0, 0)
	if err != nil || len(frames) != 0 || next != 0 {
		t.Fatalf("pre-sync read: %d frames next %d err %v", len(frames), next, err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	frames, next, err = l.ReadDurable(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 10 || next != l.End() {
		t.Fatalf("got %d frames next %d, want 10 next %d", len(frames), next, l.End())
	}
	for i, fr := range frames {
		if fr.LSN != want[i] || binary.BigEndian.Uint64(fr.Payload) != uint64(i) {
			t.Fatalf("frame %d: lsn %d payload %x", i, fr.LSN, fr.Payload)
		}
	}
	// Byte-budgeted read returns a prefix and a resumable next LSN.
	frames, next, err = l.ReadDurable(0, 1)
	if err != nil || len(frames) != 1 {
		t.Fatalf("budgeted read: %d frames err %v", len(frames), err)
	}
	if next != want[1] {
		t.Fatalf("budgeted next %d want %d", next, want[1])
	}
}

func TestReadDurableBelowBase(t *testing.T) {
	l := openTestLog(t, t.TempDir(), Options{})
	defer l.Close()
	var mid LSN
	for i := 0; i < 8; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("rec-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			mid = lsn
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.TruncateBefore(mid); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ReadDurable(0, 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("read below base: err %v, want ErrTruncated", err)
	}
	// Reading exactly at the new base still works.
	frames, _, err := l.ReadDurable(mid, 0)
	if err != nil || len(frames) != 4 {
		t.Fatalf("read at base: %d frames err %v", len(frames), err)
	}
}

// TestTruncateRacingStreamReader is the directed regression test for
// the TruncateBefore/stream-reader race: TruncateBefore swaps the
// backing file and closes the old handle while an attached stream
// reader is mid-ReadAt. The reader must always get either clean
// frames (with intact checksums and the right LSNs) or the typed
// ErrTruncated "resume below base" error — never a torn read, a CRC
// failure, or a leaked "file already closed".
func TestTruncateRacingStreamReader(t *testing.T) {
	l := openTestLog(t, t.TempDir(), Options{})
	defer l.Close()

	var payloads sync.Map // LSN -> uint64 sequence number
	var appended atomic.Uint64
	var stop atomic.Bool
	var readerErr atomic.Value

	// Writer: append + sync in small batches, truncating the prefix
	// aggressively so the swap races the readers continuously.
	writer := func() {
		seq := uint64(0)
		for !stop.Load() {
			var last LSN
			for i := 0; i < 4; i++ {
				lsn, err := l.Append(binary.BigEndian.AppendUint64(nil, seq))
				if err != nil {
					readerErr.Store(fmt.Errorf("append: %w", err))
					return
				}
				payloads.Store(lsn, seq)
				seq++
				last = lsn
			}
			if err := l.Sync(); err != nil {
				readerErr.Store(fmt.Errorf("sync: %w", err))
				return
			}
			appended.Store(seq)
			if seq%12 == 0 {
				if _, err := l.TruncateBefore(last); err != nil {
					readerErr.Store(fmt.Errorf("truncate: %w", err))
					return
				}
			}
		}
	}

	reader := func(seed int) {
		from := LSN(0)
		reads := 0
		for !stop.Load() {
			reads++
			// Alternate between tailing the frontier and probing old
			// (possibly truncated) resume points, like a follower
			// reconnecting after a long disconnect.
			probe := from
			if reads%7 == seed%7 {
				probe = 0
			}
			frames, next, err := l.ReadDurable(probe, 1<<10)
			if err != nil {
				if errors.Is(err, ErrTruncated) {
					// Clean resume-below-base: re-bootstrap at the base.
					from = l.Base()
					continue
				}
				if errors.Is(err, ErrClosed) && stop.Load() {
					return
				}
				readerErr.Store(fmt.Errorf("ReadDurable(%d): %w", probe, err))
				stop.Store(true)
				return
			}
			for _, fr := range frames {
				want, ok := payloads.Load(fr.LSN)
				if !ok {
					readerErr.Store(fmt.Errorf("frame at unknown lsn %d", fr.LSN))
					stop.Store(true)
					return
				}
				if got := binary.BigEndian.Uint64(fr.Payload); got != want.(uint64) {
					readerErr.Store(fmt.Errorf("lsn %d: payload %d want %d", fr.LSN, got, want))
					stop.Store(true)
					return
				}
			}
			if probe == from {
				from = next
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); writer() }()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) { defer wg.Done(); reader(r) }(r)
	}
	dur := 800 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if err := readerErr.Load(); err != nil {
		t.Fatal(err)
	}
	if appended.Load() == 0 {
		t.Fatal("writer made no progress")
	}
}

func TestWaitDurable(t *testing.T) {
	l := openTestLog(t, t.TempDir(), Options{})
	lsn, err := l.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		flushed, werr := l.WaitDurable(lsn, nil)
		if werr == nil && flushed <= lsn {
			werr = fmt.Errorf("woke at %d, want > %d", flushed, lsn)
		}
		done <- werr
	}()
	time.Sleep(20 * time.Millisecond)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Cancellation via stop.
	stop := make(chan struct{})
	go func() {
		_, werr := l.WaitDurable(l.End()+1000, stop)
		done <- werr
	}()
	close(stop)
	if err := <-done; !errors.Is(err, ErrWaitCanceled) {
		t.Fatalf("stop wait: %v, want ErrWaitCanceled", err)
	}

	// Close wakes waiters with ErrClosed.
	go func() {
		_, werr := l.WaitDurable(l.End()+1000, nil)
		done <- werr
	}()
	time.Sleep(20 * time.Millisecond)
	l.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("close wait: %v, want ErrClosed", err)
	}
}

func TestNoSyncAdvancesDurableFrontier(t *testing.T) {
	l := openTestLog(t, t.TempDir(), Options{NoSync: true})
	defer l.Close()
	lsn, err := l.Append([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.Flushed(); got != l.End() {
		t.Fatalf("flushed %d, want end %d", got, l.End())
	}
	frames, _, err := l.ReadDurable(lsn, 0)
	if err != nil || len(frames) != 1 || string(frames[0].Payload) != "hello" {
		t.Fatalf("nosync read: %v frames err %v", frames, err)
	}
}

func TestInitFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	const base = LSN(12345)
	if err := InitFile(path, base); err != nil {
		t.Fatal(err)
	}
	if err := InitFile(path, base); !os.IsExist(errors.Unwrap(err)) {
		t.Fatalf("second InitFile: %v, want exists error", err)
	}
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Base() != base || l.End() != base {
		t.Fatalf("base %d end %d, want both %d", l.Base(), l.End(), base)
	}
	lsn, err := l.Append([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != base {
		t.Fatalf("first append at %d, want %d", lsn, base)
	}
}
