package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestAppendReplay(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	var lsns []LSN
	for i := 0; i < 10; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if lsns[0] != 0 {
		t.Fatalf("first LSN = %d, want 0", lsns[0])
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatal("LSNs must be strictly increasing")
		}
	}
	var got []string
	err := l.Replay(func(lsn LSN, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "record-0" || got[9] != "record-9" {
		t.Fatalf("replay = %v", got)
	}
}

func TestReplayEarlyError(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	wantErr := fmt.Errorf("stop")
	n := 0
	err := l.Replay(func(LSN, []byte) error {
		n++
		return wantErr
	})
	if err != wantErr || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]byte("persist-me"))
	l.Append([]byte("me-too"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	l2.Replay(func(_ LSN, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 2 || got[0] != "persist-me" || got[1] != "me-too" {
		t.Fatalf("after reopen: %v", got)
	}
	// Appends continue from the scanned end.
	l2.Append([]byte("third"))
	var count int
	l2.Replay(func(LSN, []byte) error { count++; return nil })
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]byte("good-one"))
	l.Append([]byte("good-two"))
	l.Close()

	// Simulate a crash mid-append: chop bytes off the last record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []string
	l2.Replay(func(_ LSN, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 1 || got[0] != "good-one" {
		t.Fatalf("after torn tail: %v", got)
	}
	// New appends must not collide with the truncated garbage.
	l2.Append([]byte("recovered"))
	got = got[:0]
	l2.Replay(func(_ LSN, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if len(got) != 2 || got[1] != "recovered" {
		t.Fatalf("after re-append: %v", got)
	}
}

func TestCorruptRecordStopsReplayPrefix(t *testing.T) {
	l, path := openTemp(t)
	l.Append(bytes.Repeat([]byte("x"), 50))
	second, _ := l.Append(bytes.Repeat([]byte("y"), 50))
	l.Append(bytes.Repeat([]byte("z"), 50))
	l.Close()

	// Flip a byte inside the second record's payload. The file offset
	// of LSN x is x - base + headerSize, and the base here is 0.
	data, _ := os.ReadFile(path)
	data[int(second)+headerSize+8+10] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var count int
	l2.Replay(func(LSN, []byte) error { count++; return nil })
	if count != 1 {
		t.Fatalf("replayed %d records, want 1 (valid prefix only)", count)
	}
}

func TestTruncateBeforeDropsPrefixKeepsSuffix(t *testing.T) {
	l, path := openTemp(t)
	var lsns []LSN
	for i := 0; i < 5; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	endBefore := l.End()
	reclaimed, err := l.TruncateBefore(lsns[2])
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != uint64(lsns[2]) {
		t.Fatalf("reclaimed = %d, want %d", reclaimed, lsns[2])
	}
	if l.Base() != lsns[2] {
		t.Fatalf("Base = %d, want %d", l.Base(), lsns[2])
	}
	if l.End() != endBefore {
		t.Fatalf("End changed: %d -> %d", endBefore, l.End())
	}
	// Surviving records keep their logical LSNs.
	var gotLSN []LSN
	var got []string
	l.Replay(func(lsn LSN, p []byte) error {
		gotLSN = append(gotLSN, lsn)
		got = append(got, string(p))
		return nil
	})
	if len(got) != 3 || got[0] != "record-2" || got[2] != "record-4" {
		t.Fatalf("replay after truncate: %v", got)
	}
	if gotLSN[0] != lsns[2] || gotLSN[2] != lsns[4] {
		t.Fatalf("LSNs after truncate: %v, want %v", gotLSN, lsns[2:])
	}
	// Appends continue past the old end.
	post, err := l.Append([]byte("record-5"))
	if err != nil {
		t.Fatal(err)
	}
	if post != endBefore {
		t.Fatalf("post-truncate LSN = %d, want %d", post, endBefore)
	}
	l.Close()

	// Base and suffix survive reopen.
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Base() != lsns[2] {
		t.Fatalf("Base after reopen = %d, want %d", l2.Base(), lsns[2])
	}
	var count int
	l2.Replay(func(LSN, []byte) error { count++; return nil })
	if count != 4 {
		t.Fatalf("replayed %d records after reopen, want 4", count)
	}
}

func TestTruncateBeforeNoop(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	lsn, _ := l.Append([]byte("a"))
	if _, err := l.TruncateBefore(lsn); err != nil {
		t.Fatal(err)
	}
	// lsn == 0 == base: nothing to drop.
	if l.Base() != 0 {
		t.Fatalf("Base = %d after no-op truncate", l.Base())
	}
	reclaimed, err := l.TruncateBefore(l.End() + 100)
	if err != nil {
		t.Fatal(err)
	}
	// Clamped to End: the whole log is reclaimed, no more.
	if reclaimed != uint64(l.End()) {
		t.Fatalf("reclaimed = %d, want %d", reclaimed, l.End())
	}
	var count int
	l.Replay(func(LSN, []byte) error { count++; return nil })
	if count != 0 {
		t.Fatal("records survived full truncate")
	}
}

func TestTruncateBeforeConcurrentWithDurableAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, each = 4, 30
	var wg sync.WaitGroup
	stop := make(chan struct{})
	truncDone := make(chan struct{})
	go func() { // checkpointer: repeatedly drop the durable prefix
		defer close(truncDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := l.TruncateBefore(l.End()); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				payload := []byte(fmt.Sprintf("w%d-%d", w, i))
				lsn, err := l.Append(payload)
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.SyncTo(lsn + LSN(8+len(payload))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-truncDone
	// Every record at or above the final base must replay cleanly.
	base := l.Base()
	var prev LSN
	if err := l.Replay(func(lsn LSN, p []byte) error {
		if lsn < base || (prev != 0 && lsn <= prev) {
			t.Errorf("bad replay LSN %d (base %d, prev %d)", lsn, base, prev)
		}
		prev = lsn
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestClosedErrors(t *testing.T) {
	l, _ := openTemp(t)
	l.Close()
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
	if _, err := l.TruncateBefore(1); err != ErrClosed {
		t.Fatalf("TruncateBefore after close: %v", err)
	}
	if err := l.Replay(func(LSN, []byte) error { return nil }); err != ErrClosed {
		t.Fatalf("Replay after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	var wg sync.WaitGroup
	const writers, each = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var count int
	seen := map[string]bool{}
	l.Replay(func(_ LSN, p []byte) error {
		count++
		seen[string(p)] = true
		return nil
	})
	if count != writers*each || len(seen) != writers*each {
		t.Fatalf("replayed %d records (%d distinct), want %d", count, len(seen), writers*each)
	}
}

func TestEmptyPayload(t *testing.T) {
	l, path := openTemp(t)
	l.Append(nil)
	l.Append([]byte("after-empty"))
	l.Close()
	l2, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got []int
	l2.Replay(func(_ LSN, p []byte) error {
		got = append(got, len(p))
		return nil
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 11 {
		t.Fatalf("got %v", got)
	}
}

func TestSyncMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.wal")
	l, err := Open(path, Options{}) // sync enabled
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupSyncConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "group.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				payload := []byte(fmt.Sprintf("w%d-%d", w, i))
				lsn, err := l.Append(payload)
				if err != nil {
					t.Error(err)
					return
				}
				// A nil SyncTo return promises this record is durable.
				if err := l.SyncTo(lsn + LSN(8+len(payload))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var count int
	if err := l.Replay(func(LSN, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != writers*each {
		t.Fatalf("replayed %d records, want %d", count, writers*each)
	}
	reqs, fsyncs := l.SyncRequests(), l.Fsyncs()
	if reqs != writers*each {
		t.Fatalf("SyncRequests = %d, want %d", reqs, writers*each)
	}
	if fsyncs == 0 || fsyncs > reqs {
		t.Fatalf("Fsyncs = %d, want in [1, %d]", fsyncs, reqs)
	}
}

func TestSyncToAlreadyDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "durable.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append([]byte("rec"))
	if err != nil {
		t.Fatal(err)
	}
	target := lsn + LSN(8+3)
	if err := l.SyncTo(target); err != nil {
		t.Fatal(err)
	}
	before := l.Fsyncs()
	// The prefix is already durable: no new fsync is needed.
	if err := l.SyncTo(target); err != nil {
		t.Fatal(err)
	}
	if got := l.Fsyncs(); got != before {
		t.Fatalf("redundant SyncTo issued an fsync (%d -> %d)", before, got)
	}
}

func TestTruncateBeforeKeepsDurabilityPromise(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc-durable.wal")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("before-checkpoint"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.TruncateBefore(l.End()); err != nil {
		t.Fatal(err)
	}
	before := l.Fsyncs()
	lsn, err := l.Append([]byte("after-checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	// The record landed after the truncate rewrite was fsynced, so it
	// still needs its own flush: a stale durable prefix must not let
	// SyncTo acknowledge it for free.
	if err := l.SyncTo(lsn + LSN(8+16)); err != nil {
		t.Fatal(err)
	}
	if got := l.Fsyncs(); got == before {
		t.Fatal("SyncTo after TruncateBefore did not fsync (stale durable prefix)")
	}
}

func TestGroupWindowStillDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "window.wal")
	l, err := Open(path, Options{GroupWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("w%d", w))
			lsn, err := l.Append(payload)
			if err != nil {
				t.Error(err)
				return
			}
			if err := l.SyncTo(lsn + LSN(8+len(payload))); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if l.Fsyncs() == 0 {
		t.Fatal("no fsync issued")
	}
}

func BenchmarkAppendNoSync(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Open(path, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("p"), 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAppendSync measures the append+durability path
// under concurrent committers (sweep with -cpu 1,2,4,8). With group
// commit, the fsync sub-benchmark's ns/op drops as concurrency rises
// because parked committers share one flush.
func BenchmarkParallelAppendSync(b *testing.B) {
	run := func(b *testing.B, noSync bool) {
		path := filepath.Join(b.TempDir(), "bench.wal")
		l, err := Open(path, Options{NoSync: noSync})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		payload := bytes.Repeat([]byte("p"), 128)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := l.Append(payload); err != nil {
					b.Error(err)
					return
				}
				if err := l.Sync(); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		if reqs := l.SyncRequests(); reqs > 0 {
			b.ReportMetric(float64(l.Fsyncs())/float64(reqs), "fsyncs/req")
		}
	}
	b.Run("nosync", func(b *testing.B) { run(b, true) })
	b.Run("fsync", func(b *testing.B) { run(b, false) })
}

func TestQuickRandomPayloadsSurviveReopen(t *testing.T) {
	// Property: any batch of byte payloads appended and closed is
	// replayed identically after reopen.
	path := filepath.Join(t.TempDir(), "quick.wal")
	f := func(payloads [][]byte) bool {
		os.Remove(path)
		l, err := Open(path, Options{NoSync: true})
		if err != nil {
			return false
		}
		for _, p := range payloads {
			if _, err := l.Append(p); err != nil {
				return false
			}
		}
		l.Close()
		l2, err := Open(path, Options{NoSync: true})
		if err != nil {
			return false
		}
		defer l2.Close()
		i := 0
		ok := true
		l2.Replay(func(_ LSN, got []byte) error {
			if i >= len(payloads) || !bytes.Equal(got, payloads[i]) {
				ok = false
			}
			i++
			return nil
		})
		return ok && i == len(payloads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
