// Package feed generates deterministic synthetic security price
// quotes. It replaces the wire service the paper's Securities
// Analyst's Assistant read (NYSE quotes): the reproduction needs the
// same code path — an external process repeatedly updating stock
// prices in the database — with reproducible data (see the
// substitution table in DESIGN.md).
//
// Prices follow a clamped geometric random walk from a seeded PRNG,
// so a given (seed, symbols, steps) always yields the same tape.
package feed

import (
	"fmt"
	"math"
	"math/rand"
)

// Quote is one price observation.
type Quote struct {
	Symbol string
	Price  float64
	Seq    int // position in the tape, 0-based
}

// Generator produces quote tapes.
type Generator struct {
	rng     *rand.Rand
	symbols []string
	prices  []float64
	drift   float64
	vol     float64
	seq     int
}

// Config configures a Generator.
type Config struct {
	// Seed makes the tape reproducible.
	Seed int64
	// Symbols to quote; empty uses a default basket evocative of the
	// paper's era.
	Symbols []string
	// InitialPrice is the starting price for every symbol (default
	// 50, Xerox's strike in the paper's example rule).
	InitialPrice float64
	// Drift is the per-step expected log-return (default 0).
	Drift float64
	// Volatility is the per-step log-return standard deviation
	// (default 0.01).
	Volatility float64
}

// DefaultSymbols is the default basket.
var DefaultSymbols = []string{"XRX", "IBM", "DEC", "GM", "F", "T", "GE", "KO"}

// New returns a generator.
func New(cfg Config) *Generator {
	symbols := cfg.Symbols
	if len(symbols) == 0 {
		symbols = append([]string(nil), DefaultSymbols...)
	}
	initial := cfg.InitialPrice
	if initial <= 0 {
		initial = 50
	}
	vol := cfg.Volatility
	if vol <= 0 {
		vol = 0.01
	}
	g := &Generator{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		symbols: symbols,
		prices:  make([]float64, len(symbols)),
		drift:   cfg.Drift,
		vol:     vol,
	}
	for i := range g.prices {
		g.prices[i] = initial
	}
	return g
}

// Symbols returns the symbols quoted by this generator.
func (g *Generator) Symbols() []string {
	return append([]string(nil), g.symbols...)
}

// Next returns the next quote on the tape: a uniformly chosen symbol
// stepped by the random walk. Prices are rounded to cents and clamped
// to at least one cent.
func (g *Generator) Next() Quote {
	i := g.rng.Intn(len(g.symbols))
	step := math.Exp(g.drift + g.vol*g.rng.NormFloat64())
	p := g.prices[i] * step
	p = math.Round(p*100) / 100
	// Clamp to a sane band so cent precision survives float64 and
	// long tapes stay bounded.
	if p < 0.01 {
		p = 0.01
	}
	if p > 1e6 {
		p = 1e6
	}
	g.prices[i] = p
	q := Quote{Symbol: g.symbols[i], Price: p, Seq: g.seq}
	g.seq++
	return q
}

// Take returns the next n quotes.
func (g *Generator) Take(n int) []Quote {
	out := make([]Quote, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Price returns the current price of a symbol.
func (g *Generator) Price(symbol string) (float64, error) {
	for i, s := range g.symbols {
		if s == symbol {
			return g.prices[i], nil
		}
	}
	return 0, fmt.Errorf("feed: unknown symbol %q", symbol)
}
