package feed

import "testing"

func TestDeterministic(t *testing.T) {
	a := New(Config{Seed: 42})
	b := New(Config{Seed: 42})
	for i := 0; i < 1000; i++ {
		qa, qb := a.Next(), b.Next()
		if qa != qb {
			t.Fatalf("tape diverged at %d: %v vs %v", i, qa, qb)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(Config{Seed: 1})
	b := New(Config{Seed: 2})
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical tapes")
	}
}

func TestPricesPositiveAndRounded(t *testing.T) {
	g := New(Config{Seed: 7, Volatility: 0.5}) // violent walk
	for i := 0; i < 10_000; i++ {
		q := g.Next()
		if q.Price < 0.01 {
			t.Fatalf("price %v below one cent", q.Price)
		}
		cents := q.Price * 100
		if diff := cents - float64(int64(cents+0.5)); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("price %v not rounded to cents", q.Price)
		}
		if q.Seq != i {
			t.Fatalf("seq = %d, want %d", q.Seq, i)
		}
	}
}

func TestSymbolsDefaultAndCustom(t *testing.T) {
	g := New(Config{})
	if len(g.Symbols()) != len(DefaultSymbols) {
		t.Fatal("default basket wrong")
	}
	g2 := New(Config{Symbols: []string{"A", "B"}})
	if len(g2.Symbols()) != 2 {
		t.Fatal("custom basket wrong")
	}
	q := g2.Next()
	if q.Symbol != "A" && q.Symbol != "B" {
		t.Fatalf("symbol %q outside basket", q.Symbol)
	}
}

func TestPriceLookup(t *testing.T) {
	g := New(Config{InitialPrice: 10})
	p, err := g.Price("XRX")
	if err != nil || p != 10 {
		t.Fatalf("price = %v, %v", p, err)
	}
	if _, err := g.Price("NOPE"); err == nil {
		t.Fatal("unknown symbol accepted")
	}
}

func TestTake(t *testing.T) {
	g := New(Config{Seed: 3})
	quotes := g.Take(50)
	if len(quotes) != 50 || quotes[49].Seq != 49 {
		t.Fatalf("take = %d quotes", len(quotes))
	}
}
