package rule_test

// Race stress for the observability subsystem: external events are
// signalled while EC "separate" rules fire in their own top-level
// transactions, all with tracing and histograms on. After Quiesce the
// counters, histograms, and trace ring must agree with each other.
// Run with -race (the CI workflow does).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/rule"
	"repro/internal/workload"
)

func TestSeparateFiringObsConsistency(t *testing.T) {
	e, _ := workload.MustEngine()
	defer e.Close()
	if err := workload.DefineBase(e); err != nil {
		t.Fatal(err)
	}
	const (
		writers  = 4
		updates  = 8 // per writer
		signlers = 4
		ticks    = 8 // per signaller
		sepRules = 2
	)
	oids, err := workload.SeedStocks(e, writers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sepRules; i++ {
		name := fmt.Sprintf("sep-audit-%d", i)
		if _, err := e.CreateRule(workload.AuditRuleDef(name, "separate", "immediate")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.DefineEvent("Tick", "n"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateRule(rule.Def{
		Name:  "sep-tick",
		Event: "external(Tick)",
		Action: []rule.Step{{
			Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'tick'", "price": "event.n * 1.0"},
		}},
		EC: "separate", CA: "immediate",
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, writers+signlers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(oid int) {
			defer wg.Done()
			for i := 0; i < updates; i++ {
				if err := workload.UpdateOne(e, oids[oid], float64(i)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for s := 0; s < signlers; s++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < ticks; i++ {
				if err := e.SignalEvent(nil, "Tick", map[string]datum.Value{
					"n": datum.Int(int64(base*ticks + i)),
				}); err != nil {
					errCh <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	e.Quiesce()
	if errs := e.AsyncErrors(); len(errs) != 0 {
		t.Fatalf("async errors from separate firings: %v", errs)
	}

	wantSep := uint64(writers*updates*sepRules + signlers*ticks)
	stats := e.Stats()
	if stats.Rules.SeparateFirings != wantSep {
		t.Fatalf("SeparateFirings = %d, want %d", stats.Rules.SeparateFirings, wantSep)
	}
	if stats.Rules.ActionsExecuted != wantSep {
		t.Fatalf("ActionsExecuted = %d, want %d (one action per separate firing)", stats.Rules.ActionsExecuted, wantSep)
	}

	snap := e.Obs.Snapshot()
	if got := snap.Hist["action_exec"].Count; got != stats.Rules.ActionsExecuted {
		t.Fatalf("action_exec histogram count %d != ActionsExecuted %d", got, stats.Rules.ActionsExecuted)
	}
	if got := snap.Hist["op"].Count; got < uint64(writers*updates) {
		t.Fatalf("op histogram count %d < %d updates", got, writers*updates)
	}
	// Every separate firing is a root span; every signal handled inside
	// or outside a transaction is another root. The ring holds exactly
	// the recorded-minus-dropped newest trees.
	if snap.TraceRecorded < wantSep {
		t.Fatalf("TraceRecorded = %d, want >= %d separate roots", snap.TraceRecorded, wantSep)
	}
	trees := e.Obs.Tracer().Last(0)
	if got, want := uint64(len(trees)), snap.TraceRecorded-snap.TraceDropped; got != want {
		t.Fatalf("ring holds %d trees, recorded-dropped = %d", got, want)
	}
	for _, tree := range trees {
		tree.Walk(func(n *obs.SpanSnapshot, _ int) {
			if n.Kind == "" {
				t.Errorf("span with empty kind in tree rooted at %s %s", tree.Kind, tree.Name)
			}
			if n.DurNS < 0 {
				t.Errorf("span %s %s has negative duration %d", n.Kind, n.Name, n.DurNS)
			}
		})
		if tree.Outcome == "" {
			t.Errorf("root span %s %s never ended", tree.Kind, tree.Name)
		}
	}
}
