package rule

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/cond"
	"repro/internal/datum"
	"repro/internal/event"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/txn"
)

// AppDispatcher delivers rule-action requests to application programs
// (§4.1: "HiPAC becomes the client and the application becomes the
// server"). The engine connects it to registered in-process handlers
// or, through the server layer, to remote clients.
type AppDispatcher interface {
	Dispatch(op string, args map[string]datum.Value) (map[string]datum.Value, error)
}

// CallFunc is a registered Go callback usable in "call" action steps.
type CallFunc func(tx *txn.Txn, bindings map[string]datum.Value) error

// Stats counts rule-manager activity.
type Stats struct {
	Signals             uint64 // event signals handled
	Triggered           uint64 // rule firings scheduled
	ImmediateFirings    uint64
	DeferredFirings     uint64
	SeparateFirings     uint64
	ConditionsSatisfied uint64
	ActionsExecuted     uint64
	AsyncErrors         uint64

	// RuleFirings counts action executions per rule name. Cardinality
	// is bounded: past MaxFiringCounters distinct names, further rules
	// aggregate under FiringOverflowKey.
	RuleFirings map[string]uint64 `json:",omitempty"`
}

// MaxFiringCounters bounds the per-rule firing counter map; rule
// names beyond the cap are counted under FiringOverflowKey so an
// unbounded rule churn cannot grow the stats snapshot without limit.
const MaxFiringCounters = 1024

// FiringOverflowKey aggregates firings of rules beyond the counter
// cardinality cap.
const FiringOverflowKey = "__other__"

// Manager is the Rule Manager. It maps events to rules and schedules
// condition evaluation and action execution per the coupling modes.
type Manager struct {
	txns    *txn.Manager
	objects *object.Manager
	eval    *cond.Evaluator
	det     *event.Detectors // set via SetDetectors after construction
	met     *obs.Metrics     // nil-safe latency observer
	tr      *obs.Tracer      // nil-safe firing-tree tracer

	mu       sync.RWMutex
	rules    map[datum.OID]*Rule
	byName   map[string]datum.OID
	bySub    map[event.SubID]map[datum.OID]*Rule
	specSubs map[string]event.SubID // canonical spec -> shared subscription
	calls    map[string]CallFunc
	app      AppDispatcher
	onErr    func(rule string, err error)
	stats    Stats
	fired    map[string]uint64 // per-rule action executions (capped)

	sep sync.WaitGroup // in-flight separate firings
}

// NewManager returns a Rule Manager. Call SetDetectors once the event
// detectors exist (they need the manager's HandleEmit as their sink),
// and Restore to reload persisted rules.
func NewManager(txns *txn.Manager, objects *object.Manager, eval *cond.Evaluator) *Manager {
	return &Manager{
		txns:     txns,
		objects:  objects,
		eval:     eval,
		rules:    map[datum.OID]*Rule{},
		byName:   map[string]datum.OID{},
		bySub:    map[event.SubID]map[datum.OID]*Rule{},
		specSubs: map[string]event.SubID{},
		calls:    map[string]CallFunc{},
	}
}

// SetDetectors wires the event detectors. Not safe to call
// concurrently with rule processing.
func (m *Manager) SetDetectors(d *event.Detectors) { m.det = d }

// SetAppDispatcher wires the application-operation dispatcher. Not
// safe to call concurrently with rule processing.
func (m *Manager) SetAppDispatcher(a AppDispatcher) { m.app = a }

// SetObs wires the observability subsystem: firing steps become spans
// of the tracer's firing trees, and action executions feed the latency
// histograms. Not safe to call concurrently with rule processing.
func (m *Manager) SetObs(o *obs.Obs) {
	m.met = o.Metrics()
	m.tr = o.Tracer()
}

// SetErrorHandler installs a handler for errors in separate (asynchronous)
// firings. Not safe to call concurrently with rule processing.
func (m *Manager) SetErrorHandler(f func(rule string, err error)) { m.onErr = f }

// RegisterCall registers a Go callback usable by "call" action steps.
func (m *Manager) RegisterCall(name string, fn CallFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls[name] = fn
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := m.stats
	if len(m.fired) > 0 {
		st.RuleFirings = make(map[string]uint64, len(m.fired))
		for name, n := range m.fired {
			st.RuleFirings[name] = n
		}
	}
	return st
}

// countFiring bumps the per-rule firing counter, spilling into the
// overflow bucket once the cardinality cap is reached.
func (m *Manager) countFiring(name string) {
	m.mu.Lock()
	if m.fired == nil {
		m.fired = map[string]uint64{}
	}
	if _, ok := m.fired[name]; !ok && len(m.fired) >= MaxFiringCounters {
		name = FiringOverflowKey
	}
	m.fired[name]++
	m.mu.Unlock()
}

func (m *Manager) bump(f func(*Stats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}

// traceAnchor finds the span a signal raised inside t should hang
// from: the innermost open firing span bound to t or one of its
// ancestors (a cascade), or nil for a fresh firing tree.
func (m *Manager) traceAnchor(t *txn.Txn) *obs.Span {
	for ; t != nil; t = t.Parent() {
		if sp := m.tr.Bound(uint64(t.ID())); sp != nil {
			return sp
		}
	}
	return nil
}

func (m *Manager) reportAsync(rule string, err error) {
	m.bump(func(s *Stats) { s.AsyncErrors++ })
	m.mu.RLock()
	h := m.onErr
	m.mu.RUnlock()
	if h != nil {
		h(rule, err)
	}
}

// Quiesce blocks until all in-flight separate firings complete.
func (m *Manager) Quiesce() { m.sep.Wait() }

// --- rule lifecycle (rules are objects: §2.2) ---

// EnsureRuleClass defines the "__rule" system class if absent. The
// engine calls it once at startup.
func (m *Manager) EnsureRuleClass() error {
	t := m.txns.Begin()
	t.Internal = true
	err := m.objects.DefineClass(t, object.Class{
		Name: RuleClass,
		Attrs: []object.AttrDef{
			{Name: "name", Kind: datum.KindString, Required: true},
			{Name: "def", Kind: datum.KindString, Required: true},
			{Name: "enabled", Kind: datum.KindBool},
		},
	})
	if errors.Is(err, object.ErrClassExists) {
		err = nil
	}
	if err != nil {
		t.Abort()
		return err
	}
	return t.Commit()
}

// CreateRule compiles, persists, and activates a rule (§6.1). Rule
// management operations run in their own (internal) transactions; the
// rule is active once CreateRule returns.
func (m *Manager) CreateRule(def Def) (*Rule, error) {
	r, err := compile(def)
	if err != nil {
		return nil, err
	}
	m.mu.RLock()
	_, dup := m.byName[def.Name]
	m.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("rule: %q already exists", def.Name)
	}
	attrs, err := encodeDef(def, r.Enabled)
	if err != nil {
		return nil, err
	}
	t := m.txns.Begin()
	t.Internal = true
	oid, err := m.objects.Create(t, RuleClass, attrs)
	if err != nil {
		t.Abort()
		return nil, err
	}
	if err := t.Commit(); err != nil {
		return nil, err
	}
	r.OID = oid
	if err := m.register(r); err != nil {
		return nil, err
	}
	return r, nil
}

// register installs a compiled rule into the runtime maps, the
// condition graph, and the event detectors. Rules with identical
// event specifications SHARE one detector subscription: a single
// occurrence then triggers them together, and per §3.2 "for rules
// with the same event and E-C coupling mode, the condition evaluation
// transactions will execute concurrently" as siblings.
func (m *Manager) register(r *Rule) error {
	if m.det == nil {
		return errors.New("rule: detectors not wired")
	}
	key := r.Spec.String()
	m.mu.Lock()
	sub, shared := m.specSubs[key]
	m.mu.Unlock()
	if !shared {
		var err error
		sub, err = m.det.Define(r.Spec)
		if err != nil {
			return err
		}
	}
	r.sub = sub
	m.eval.AddRule(uint64(r.OID), r.Condition)
	m.mu.Lock()
	m.rules[r.OID] = r
	m.byName[r.Name] = r.OID
	if m.bySub[sub] == nil {
		m.bySub[sub] = map[datum.OID]*Rule{}
	}
	m.bySub[sub][r.OID] = r
	m.specSubs[key] = sub
	m.mu.Unlock()
	m.syncSubEnablement(sub)
	return nil
}

// syncSubEnablement enables the detector subscription iff any rule
// sharing it is enabled; automatic firing of individually disabled
// rules is filtered in HandleEmit.
func (m *Manager) syncSubEnablement(sub event.SubID) {
	m.mu.RLock()
	any := false
	for _, r := range m.bySub[sub] {
		if r.Enabled {
			any = true
			break
		}
	}
	m.mu.RUnlock()
	if any {
		m.det.Enable(sub)
	} else {
		m.det.Disable(sub)
	}
}

// DeleteRule removes a rule: its object is deleted under a write lock
// (blocking until in-flight firings that hold the read lock finish),
// its condition leaves the graph, and its event detection ceases if
// no other rule uses the event (§5.3).
func (m *Manager) DeleteRule(name string) error {
	m.mu.RLock()
	oid, ok := m.byName[name]
	r := m.rules[oid]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("rule: no rule %q", name)
	}
	t := m.txns.Begin()
	t.Internal = true
	if err := m.objects.Delete(t, oid); err != nil { // X lock on the rule object
		t.Abort()
		return err
	}
	if err := t.Commit(); err != nil {
		return err
	}
	m.unregister(r)
	return nil
}

// unregister removes a rule from the runtime maps, the condition
// graph, and — when it was the last rule on its event — the detectors
// (§5.3: detection ceases when the last rule using the event is
// deleted).
func (m *Manager) unregister(r *Rule) {
	m.eval.RemoveRule(uint64(r.OID))
	m.mu.Lock()
	delete(m.rules, r.OID)
	delete(m.byName, r.Name)
	delete(m.bySub[r.sub], r.OID)
	last := len(m.bySub[r.sub]) == 0
	if last {
		delete(m.bySub, r.sub)
		delete(m.specSubs, r.Spec.String())
	}
	m.mu.Unlock()
	if last {
		m.det.Delete(r.sub)
	}
}

// UpdateRule replaces an existing rule's definition in place (§2.2
// lists modify among the rule operations). The rule object keeps its
// OID; the write lock blocks until in-flight firings release their
// read locks, so no firing observes a half-updated rule.
func (m *Manager) UpdateRule(def Def) (*Rule, error) {
	m.mu.RLock()
	oid, ok := m.byName[def.Name]
	old := m.rules[oid]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("rule: no rule %q", def.Name)
	}
	r, err := compile(def)
	if err != nil {
		return nil, err
	}
	attrs, err := encodeDef(def, r.Enabled)
	if err != nil {
		return nil, err
	}
	t := m.txns.Begin()
	t.Internal = true
	if err := m.objects.Modify(t, oid, attrs); err != nil { // X lock
		t.Abort()
		return nil, err
	}
	if err := t.Commit(); err != nil {
		return nil, err
	}
	r.OID = oid
	m.unregister(old)
	if err := m.register(r); err != nil {
		return nil, err
	}
	return r, nil
}

// setEnabled implements Enable/Disable (§2.2: they take write locks —
// "we think of enable and disable as modifying a rule").
func (m *Manager) setEnabled(name string, enabled bool) error {
	m.mu.RLock()
	oid, ok := m.byName[name]
	r := m.rules[oid]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("rule: no rule %q", name)
	}
	t := m.txns.Begin()
	t.Internal = true
	if err := m.objects.Modify(t, oid, map[string]datum.Value{"enabled": datum.Bool(enabled)}); err != nil {
		t.Abort()
		return err
	}
	if err := t.Commit(); err != nil {
		return err
	}
	m.mu.Lock()
	r.Enabled = enabled
	m.mu.Unlock()
	m.syncSubEnablement(r.sub)
	return nil
}

// EnableRule re-enables automatic firing.
func (m *Manager) EnableRule(name string) error { return m.setEnabled(name, true) }

// DisableRule suspends automatic firing. The rule can still be fired
// manually with Fire.
func (m *Manager) DisableRule(name string) error { return m.setEnabled(name, false) }

// GetRule returns a registered rule by name.
func (m *Manager) GetRule(name string) (*Rule, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	oid, ok := m.byName[name]
	return m.rules[oid], ok
}

// Rules lists registered rules in name order.
func (m *Manager) Rules() []*Rule {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Rule, 0, len(m.rules))
	for _, r := range m.rules {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Restore reloads persisted rules from the "__rule" extent (after a
// restart). Rules that fail to compile are skipped with an error
// report.
func (m *Manager) Restore() error {
	t := m.txns.Begin()
	t.Internal = true
	defer t.Commit()
	type stored struct {
		oid     datum.OID
		def     Def
		enabled bool
	}
	var all []stored
	var firstErr error
	reader := m.objects.Reader(t)
	err := reader.ScanClass(RuleClass, func(oid datum.OID, attrs map[string]datum.Value) bool {
		def, enabled, err := decodeDef(attrs)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return true
		}
		all = append(all, stored{oid, def, enabled})
		return true
	})
	if err != nil {
		return err
	}
	for _, s := range all {
		r, err := compile(s.def)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("rule: restore %q: %w", s.def.Name, err)
			}
			continue
		}
		r.OID = s.oid
		r.Enabled = s.enabled
		if err := m.register(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- event signal processing (§6.2) ---

// firing is one scheduled rule firing.
type firing struct {
	rule *Rule
	sig  event.Signal
}

// deferredSet hangs off a transaction's DeferredData slot.
type deferredSet struct {
	mu      sync.Mutex
	entries []deferredEntry
}

type deferredEntry struct {
	sig   event.Signal
	rules []*Rule
}

func (d *deferredSet) add(e deferredEntry) {
	d.mu.Lock()
	d.entries = append(d.entries, e)
	d.mu.Unlock()
}

func (d *deferredSet) drain() []deferredEntry {
	d.mu.Lock()
	out := d.entries
	d.entries = nil
	d.mu.Unlock()
	return out
}

// HandleEmit is the detectors' sink: it implements the §6.2 protocol.
// It runs synchronously on the goroutine where the event occurred, so
// the triggering operation is suspended until immediate processing
// completes; its error return propagates to that operation.
func (m *Manager) HandleEmit(sub event.SubID, sig event.Signal) error {
	m.mu.RLock()
	var triggered []*Rule
	for _, r := range m.bySub[sub] {
		if r.Enabled {
			triggered = append(triggered, r)
		}
	}
	m.mu.RUnlock()
	m.bump(func(s *Stats) { s.Signals++; s.Triggered += uint64(len(triggered)) })
	if len(triggered) == 0 {
		return nil
	}

	// Group by E-C coupling mode.
	var immediate, deferred, separate []*Rule
	for _, r := range triggered {
		switch r.EC {
		case Immediate:
			immediate = append(immediate, r)
		case Deferred:
			deferred = append(deferred, r)
		case Separate:
			separate = append(separate, r)
		}
	}

	trigger, haveTxn := m.txns.Find(sig.Txn)
	if haveTxn {
		// The signal may arrive while the transaction is already
		// committing (commit events); children are still allowed
		// then, but not after termination.
		if trigger.State() == txn.Committed || trigger.State() == txn.Aborted {
			haveTxn = false
		}
	}

	// The signal span: the root of a fresh firing tree, or — when the
	// signal was raised inside an open firing span's transaction tree
	// (a cascade) — a child attached under that span.
	var sp *obs.Span
	if m.tr.On() {
		name := sig.Spec.String()
		if anchor := m.traceAnchor(trigger); haveTxn && anchor != nil {
			sp = anchor.StartChild("signal", name, "", uint64(sig.Txn), 0)
		} else {
			sp = m.tr.StartRoot("signal", name, "", uint64(sig.Txn), 0)
		}
	}

	// Separate firings never wait (§6.2 "Meanwhile, the Rule Manager
	// continues").
	for _, r := range separate {
		sp.Mark("separate-spawn", r.Name, "separate", "", 0, 0)
		m.spawnSeparate(r, sig)
	}

	// Deferred firings join the triggering transaction's set; without
	// a triggering transaction they degrade to separate firings.
	if len(deferred) > 0 {
		if haveTxn {
			set, _ := trigger.DeferredData.(*deferredSet)
			if set == nil {
				set = &deferredSet{}
				trigger.DeferredData = set
			}
			set.add(deferredEntry{sig: sig, rules: deferred})
			m.bump(func(s *Stats) { s.DeferredFirings += uint64(len(deferred)) })
			for _, r := range deferred {
				sp.Mark("deferred-queue", r.Name, "deferred", "", 0, 0)
			}
		} else {
			for _, r := range deferred {
				sp.Mark("separate-spawn", r.Name, "separate", "", 0, 0)
				m.spawnSeparate(r, sig)
			}
		}
	}

	// Immediate firings run now, in subtransactions of the trigger,
	// which is suspended until they all terminate.
	if len(immediate) > 0 {
		if haveTxn {
			m.bump(func(s *Stats) { s.ImmediateFirings += uint64(len(immediate)) })
			if err := m.fireGroup(trigger, immediate, sig, sp, "immediate"); err != nil {
				sp.End("aborted")
				return err
			}
			sp.End("ok")
			return nil
		}
		for _, r := range immediate {
			sp.Mark("separate-spawn", r.Name, "separate", "", 0, 0)
			m.spawnSeparate(r, sig)
		}
	}
	sp.End("ok")
	return nil
}

// fireGroup processes a group of rule firings anchored at parent:
// all conditions are evaluated in one shared subtransaction (the
// condition graph makes this the multiple-query optimization of
// §5.5); its locks fold into parent at commit, preserving two-phase
// locking. The satisfied rules' actions then execute concurrently as
// sibling subtransactions of parent (§3.2: no conflict resolution —
// serializability is the correctness criterion).
func (m *Manager) fireGroup(parent *txn.Txn, rules []*Rule, sig event.Signal, sp *obs.Span, mode string) error {
	gc, err := parent.Child()
	if err != nil {
		return fmt.Errorf("rule: condition transaction: %w", err)
	}
	gc.Internal = true
	csp := sp.StartChild("cond", groupName(rules), mode, uint64(gc.ID()), uint64(parent.ID()))

	ids := make([]uint64, 0, len(rules))
	for _, r := range rules {
		// Firing takes a read lock on the rule object (§2.2).
		if err := gc.Lock(ruleItem(r.OID), lock.Shared); err != nil {
			gc.Abort()
			csp.End("aborted")
			return err
		}
		ids = append(ids, uint64(r.OID))
	}
	// The whole condition evaluation reads one pinned snapshot LSN
	// plus the triggering transaction's own uncommitted effects (gc is
	// its descendant): the as-of-commit view of §4.2. Commits landing
	// *during* the evaluation are invisible, so every condition in the
	// group judges the same database state.
	reader := m.objects.SnapshotReader(gc)
	outcomes, err := m.eval.Evaluate(reader, sig.Bindings, false, ids)
	reader.Close()
	if err != nil {
		gc.Abort()
		csp.End("aborted")
		return err
	}
	if err := gc.Commit(); err != nil {
		csp.End("aborted")
		return err
	}

	var wave1, wave2 []firing // CA immediate, then CA deferred
	for _, r := range rules {
		oc := outcomes[uint64(r.OID)]
		if oc == nil || !oc.Satisfied {
			csp.Mark("rule", r.Name, r.CA.String(), "not-satisfied", 0, 0)
			continue
		}
		m.bump(func(s *Stats) { s.ConditionsSatisfied++ })
		switch r.CA {
		case Immediate:
			wave1 = append(wave1, firing{r, sig})
		case Deferred:
			wave2 = append(wave2, firing{r, sig})
		case Separate:
			csp.Mark("separate-spawn", r.Name, "separate", "", 0, 0)
			m.spawnAction(r, sig, oc)
		}
	}
	csp.End("ok")
	if err := m.runWave(parent, wave1, outcomes, sp); err != nil {
		return err
	}
	return m.runWave(parent, wave2, outcomes, sp)
}

// runWave executes the actions of a wave concurrently as sibling
// subtransactions of parent, waiting for all and returning the first
// error (whose firing subtransaction is aborted).
func (m *Manager) runWave(parent *txn.Txn, wave []firing, outcomes map[uint64]*cond.Outcome, sp *obs.Span) error {
	if len(wave) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(wave))
	for i, f := range wave {
		ac, err := parent.Child()
		if err != nil {
			errs[i] = err
			break
		}
		ac.Internal = true
		asp := sp.StartChild("action", f.rule.Name, f.rule.CA.String(), uint64(ac.ID()), uint64(parent.ID()))
		wg.Add(1)
		go func(i int, f firing, ac *txn.Txn, asp *obs.Span) {
			defer wg.Done()
			oc := outcomes[uint64(f.rule.OID)]
			if err := m.execAction(ac, f.rule, f.sig, oc.Primary); err != nil {
				ac.Abort()
				asp.End("aborted")
				errs[i] = fmt.Errorf("rule %q action: %w", f.rule.Name, err)
				return
			}
			if err := ac.Commit(); err != nil {
				asp.End("aborted")
				errs[i] = fmt.Errorf("rule %q action commit: %w", f.rule.Name, err)
				return
			}
			asp.End("fired")
		}(i, f, ac, asp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// spawnSeparate runs one rule firing in its own top-level
// transaction, concurrent with the trigger (§3.2 separate coupling).
func (m *Manager) spawnSeparate(r *Rule, sig event.Signal) {
	m.bump(func(s *Stats) { s.SeparateFirings++ })
	m.sep.Add(1)
	go func() {
		defer m.sep.Done()
		t := m.txns.Begin()
		t.Internal = true
		sp := m.tr.StartRoot("separate", r.Name, r.EC.String()+"/"+r.CA.String(), uint64(t.ID()), 0)
		if err := t.Lock(ruleItem(r.OID), lock.Shared); err != nil {
			t.Abort()
			sp.End("aborted")
			m.reportAsync(r.Name, err)
			return
		}
		// Separate firings evaluate against their own pinned snapshot
		// too: one consistent view per evaluation.
		reader := m.objects.SnapshotReader(t)
		outcomes, err := m.eval.Evaluate(reader, sig.Bindings, true, []uint64{uint64(r.OID)})
		reader.Close()
		if err != nil {
			t.Abort()
			sp.End("aborted")
			m.reportAsync(r.Name, err)
			return
		}
		oc := outcomes[uint64(r.OID)]
		if oc == nil || !oc.Satisfied {
			t.Commit()
			sp.End("not-satisfied")
			return
		}
		m.bump(func(s *Stats) { s.ConditionsSatisfied++ })
		switch r.CA {
		case Immediate, Deferred:
			// Condition and action together in the separate
			// transaction (the paper's SAA rules use exactly this).
			if err := m.execAction(t, r, sig, oc.Primary); err != nil {
				t.Abort()
				sp.End("aborted")
				m.reportAsync(r.Name, err)
				return
			}
			if err := t.Commit(); err != nil {
				sp.End("aborted")
				m.reportAsync(r.Name, err)
				return
			}
			sp.End("fired")
		case Separate:
			if err := t.Commit(); err != nil {
				sp.End("aborted")
				m.reportAsync(r.Name, err)
				return
			}
			sp.Mark("separate-spawn", r.Name, "separate", "", 0, 0)
			sp.End("ok")
			m.spawnAction(r, sig, oc)
		}
	}()
}

// spawnAction runs a satisfied rule's action in a fresh top-level
// transaction (C-A separate coupling).
func (m *Manager) spawnAction(r *Rule, sig event.Signal, oc *cond.Outcome) {
	m.sep.Add(1)
	go func() {
		defer m.sep.Done()
		t := m.txns.Begin()
		t.Internal = true
		sp := m.tr.StartRoot("action", r.Name, "separate", uint64(t.ID()), 0)
		if err := m.execAction(t, r, sig, oc.Primary); err != nil {
			t.Abort()
			sp.End("aborted")
			m.reportAsync(r.Name, err)
			return
		}
		if err := t.Commit(); err != nil {
			sp.End("aborted")
			m.reportAsync(r.Name, err)
			return
		}
		sp.End("fired")
	}()
}

// --- commit processing (§6.3) ---

// ProcessCommit is registered as a transaction-manager pre-commit
// hook: when a transaction commits, the Transaction Manager signals
// the commit event and the Rule Manager processes the transaction's
// deferred rule firings before commit completes.
func (m *Manager) ProcessCommit(t *txn.Txn) error {
	// The commit event itself can trigger rules (transaction-control
	// events, §2.1). Signalled first, so rules on commit() run while
	// the transaction can still host subtransactions. Internal
	// (rule-processing) transactions do not signal: a commit() rule
	// would otherwise trigger itself through its own firing
	// subtransactions, recursing forever.
	if m.det != nil && !t.Internal {
		if err := m.det.SignalDatabase(event.OpCommit, "", t.ID(), map[string]datum.Value{
			"op":  datum.Str(string(event.OpCommit)),
			"txn": datum.Int(int64(t.ID())),
		}); err != nil {
			return err
		}
	}
	// Drain the deferred set; processing can enqueue further deferred
	// firings (cascades), so loop until empty.
	set, _ := t.DeferredData.(*deferredSet)
	if set == nil {
		return nil
	}
	// dsp groups the whole drain. Started lazily on the first
	// non-empty batch: child of an enclosing firing span when the
	// committing transaction sits inside one, a fresh root otherwise.
	var dsp *obs.Span
	var dspStarted bool
	for {
		entries := set.drain()
		if len(entries) == 0 {
			dsp.End("ok")
			return nil
		}
		if !dspStarted && m.tr.On() {
			dspStarted = true
			if anchor := m.traceAnchor(t); anchor != nil {
				dsp = anchor.StartChild("commit", "deferred", "deferred", uint64(t.ID()), 0)
			} else {
				dsp = m.tr.StartRoot("commit", "deferred", "deferred", uint64(t.ID()), 0)
			}
		}
		for _, e := range entries {
			for _, r := range e.rules {
				dsp.Mark("deferred-drain", r.Name, "deferred", "", 0, 0)
			}
			if err := m.fireGroup(t, e.rules, e.sig, dsp, "deferred"); err != nil {
				dsp.End("aborted")
				return err
			}
		}
	}
}

// ProcessAbort is registered as a transaction listener: aborts are
// signalled as transaction-control events (outside any transaction —
// the aborted one is gone), and the transaction's deferred firings
// are discarded.
func (m *Manager) ProcessAbort(t *txn.Txn) {
	if set, _ := t.DeferredData.(*deferredSet); set != nil {
		set.drain()
	}
	if m.det != nil && !t.Internal {
		if err := m.det.SignalDatabase(event.OpAbort, "", 0, map[string]datum.Value{
			"op":  datum.Str(string(event.OpAbort)),
			"txn": datum.Int(int64(t.ID())),
		}); err != nil {
			m.reportAsync("", err)
		}
	}
}

// --- manual firing (§2.2 Fire) ---

// Fire fires a rule manually, regardless of its enabled state. If tx
// is non-nil the firing is processed as an immediate firing anchored
// at tx; otherwise it runs as a separate firing (Quiesce to await
// it). args become the event bindings seen by condition and action.
func (m *Manager) Fire(tx *txn.Txn, name string, args map[string]datum.Value) error {
	m.mu.RLock()
	oid, ok := m.byName[name]
	r := m.rules[oid]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("rule: no rule %q", name)
	}
	sig := event.Signal{Spec: r.Spec, Bindings: args}
	if m.det != nil {
		sig.Time = m.det.Now()
	}
	if tx != nil {
		sig.Txn = tx.ID()
		var sp *obs.Span
		if m.tr.On() {
			if anchor := m.traceAnchor(tx); anchor != nil {
				sp = anchor.StartChild("fire", r.Name, "", uint64(tx.ID()), 0)
			} else {
				sp = m.tr.StartRoot("fire", r.Name, "", uint64(tx.ID()), 0)
			}
		}
		if err := m.fireGroup(tx, []*Rule{r}, sig, sp, "fire"); err != nil {
			sp.End("aborted")
			return err
		}
		sp.End("ok")
		return nil
	}
	m.spawnSeparate(r, sig)
	return nil
}

// --- action execution ---

// execAction runs the rule's action steps in tx: once per row of the
// condition's primary result, or once with the event bindings alone
// when the condition was empty.
func (m *Manager) execAction(tx *txn.Txn, r *Rule, sig event.Signal, primary *query.Result) error {
	tm := m.met.Timer(obs.HActionExec)
	defer tm.Done()
	m.bump(func(s *Stats) { s.ActionsExecuted++ })
	m.countFiring(r.Name)
	rows := 1
	if primary != nil {
		rows = len(primary.Rows)
	}
	for i := 0; i < rows; i++ {
		var vars map[string]datum.Value
		if primary != nil {
			vars = primary.RowBindings(i)
		}
		for stepIdx, st := range r.Steps {
			if err := m.execStep(tx, r, st, vars, sig.Bindings); err != nil {
				return fmt.Errorf("step %d (%s): %w", stepIdx+1, st.kind, err)
			}
		}
	}
	return nil
}

func (m *Manager) execStep(tx *txn.Txn, r *Rule, st compiledStep,
	vars, eventArgs map[string]datum.Value) error {

	reader := m.objects.Reader(tx)
	switch st.kind {
	case StepCreate:
		attrs, err := evalExprs(st.attrs, reader, vars, eventArgs)
		if err != nil {
			return err
		}
		_, err = m.objects.Create(tx, st.class, attrs)
		return err

	case StepModify:
		target, err := query.EvalExpr(st.target, reader, vars, eventArgs)
		if err != nil {
			return err
		}
		if target.Kind() != datum.KindOID {
			return fmt.Errorf("target expression yielded %s, want an object", target.Kind())
		}
		attrs, err := evalExprs(st.attrs, reader, vars, eventArgs)
		if err != nil {
			return err
		}
		return m.objects.Modify(tx, target.AsOID(), attrs)

	case StepDelete:
		target, err := query.EvalExpr(st.target, reader, vars, eventArgs)
		if err != nil {
			return err
		}
		if target.Kind() != datum.KindOID {
			return fmt.Errorf("target expression yielded %s, want an object", target.Kind())
		}
		return m.objects.Delete(tx, target.AsOID())

	case StepSignal:
		args, err := evalExprs(st.args, reader, vars, eventArgs)
		if err != nil {
			return err
		}
		if m.det == nil {
			return errors.New("detectors not wired")
		}
		_, err = m.det.SignalExternal(st.event, tx.ID(), args)
		return err

	case StepRequest:
		m.mu.RLock()
		app := m.app
		m.mu.RUnlock()
		if app == nil {
			return fmt.Errorf("no application serves operation %q", st.op)
		}
		args, err := evalExprs(st.args, reader, vars, eventArgs)
		if err != nil {
			return err
		}
		_, err = app.Dispatch(st.op, args)
		return err

	case StepCall:
		m.mu.RLock()
		fn := m.calls[st.fn]
		m.mu.RUnlock()
		if fn == nil {
			return fmt.Errorf("no registered callback %q", st.fn)
		}
		return fn(tx, mergedBindings(vars, eventArgs))

	case StepAbort:
		return fmt.Errorf("%w (rule %q)", AbortRequested, r.Name)

	default:
		return fmt.Errorf("unknown step kind %q", st.kind)
	}
}

func mergedBindings(vars, eventArgs map[string]datum.Value) map[string]datum.Value {
	out := make(map[string]datum.Value, len(vars)+len(eventArgs))
	for k, v := range eventArgs {
		out[k] = v
	}
	for k, v := range vars {
		out[k] = v
	}
	return out
}

func groupName(rules []*Rule) string {
	if len(rules) == 1 {
		return rules[0].Name
	}
	return fmt.Sprintf("group(%d)", len(rules))
}

func ruleItem(oid datum.OID) lock.Item { return lock.Item("obj/" + oid.String()) }
