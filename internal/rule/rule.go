// Package rule implements the HiPAC Rule Manager (§5.4 and §6 of the
// paper): rules as first-class database objects, the mapping from
// events to rules, and the scheduling of condition evaluation and
// action execution according to the rules' coupling modes, in nested
// transactions.
//
// Rules are stored in the system class "__rule", so they have OIDs,
// are durable, and are subject to transaction semantics: firing a
// rule takes a read lock on the rule object; create, modify, delete,
// enable, and disable take write locks (§2.2).
package rule

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/cond"
	"repro/internal/datum"
	"repro/internal/event"
	"repro/internal/query"
)

// Coupling is a coupling mode (§2.1): the transactional relationship
// between event and condition (E-C) or condition and action (C-A).
type Coupling int

// Coupling modes.
const (
	// Immediate: evaluate/execute at the point of the trigger, in a
	// subtransaction of the triggering transaction, which is
	// suspended meanwhile.
	Immediate Coupling = iota
	// Deferred: in a subtransaction of the triggering transaction,
	// but at its commit point.
	Deferred
	// Separate: in a new top-level transaction, concurrent with the
	// triggering transaction.
	Separate
)

// String names the coupling mode.
func (c Coupling) String() string {
	switch c {
	case Immediate:
		return "immediate"
	case Deferred:
		return "deferred"
	case Separate:
		return "separate"
	default:
		return fmt.Sprintf("coupling(%d)", int(c))
	}
}

// ParseCoupling reads a coupling-mode name.
func ParseCoupling(s string) (Coupling, error) {
	switch s {
	case "immediate", "":
		return Immediate, nil
	case "deferred":
		return Deferred, nil
	case "separate":
		return Separate, nil
	default:
		return 0, fmt.Errorf("rule: unknown coupling mode %q", s)
	}
}

// StepKind identifies an action step's operation.
type StepKind string

// Action step kinds. Database operations and requests to application
// programs, per §2.1 ("The action is a sequence of operations. These
// can be database operations or external requests to application
// programs"), plus event signalling, registered Go callbacks, and an
// explicit abort for constraint enforcement.
const (
	StepCreate  StepKind = "create"  // create an object
	StepModify  StepKind = "modify"  // modify an object
	StepDelete  StepKind = "delete"  // delete an object
	StepSignal  StepKind = "signal"  // signal an external event
	StepRequest StepKind = "request" // request to an application program
	StepCall    StepKind = "call"    // invoke a registered Go callback
	StepAbort   StepKind = "abort"   // abort the firing (and its trigger)
)

// Step is one declarative action step. Attribute and argument values
// are expressions over the event bindings (event.x) and the
// condition's primary-result columns (bare names).
type Step struct {
	Kind   StepKind          `json:"kind"`
	Class  string            `json:"class,omitempty"`  // create
	Target string            `json:"target,omitempty"` // modify/delete: expression yielding an OID
	Attrs  map[string]string `json:"attrs,omitempty"`  // create/modify
	Event  string            `json:"event,omitempty"`  // signal: external event name
	Op     string            `json:"op,omitempty"`     // request: application operation
	Args   map[string]string `json:"args,omitempty"`   // signal/request/call arguments
	Fn     string            `json:"fn,omitempty"`     // call: registered callback name
}

// Def is the user-facing definition of a rule.
type Def struct {
	Name string `json:"name"`
	// Event is the triggering event in the canonical text syntax.
	// Empty means: derive the event from the condition's footprint
	// (§2.1 "the event specification can also be omitted").
	Event string `json:"event,omitempty"`
	// Condition is a collection of queries; all must be non-empty for
	// the condition to be satisfied. Empty means always satisfied.
	// The first query is primary: the action runs once per row of its
	// result.
	Condition []string `json:"condition,omitempty"`
	Action    []Step   `json:"action"`
	// EC and CA are the coupling modes ("immediate", "deferred",
	// "separate"); empty means immediate.
	EC string `json:"ec,omitempty"`
	CA string `json:"ca,omitempty"`
	// Disabled creates the rule without enabling automatic firing.
	Disabled bool `json:"disabled,omitempty"`
}

// Rule is a compiled, registered rule.
type Rule struct {
	OID       datum.OID
	Name      string
	Spec      event.Spec // the (possibly derived) event specification
	Derived   bool       // Spec was derived from the condition
	Condition cond.Condition
	Steps     []compiledStep
	EC, CA    Coupling
	Enabled   bool

	def Def // original definition, for persistence and display
	sub event.SubID
}

// Definition returns the rule's original definition.
func (r *Rule) Definition() Def { return r.def }

// EventString returns the canonical text of the (possibly derived)
// event specification.
func (r *Rule) EventString() string {
	if r.Spec == nil {
		return ""
	}
	return r.Spec.String()
}

type compiledStep struct {
	kind   StepKind
	class  string
	target query.Expr
	attrs  map[string]query.Expr
	event  string
	op     string
	args   map[string]query.Expr
	fn     string
}

// compile parses a definition into a Rule (without registering it).
func compile(def Def) (*Rule, error) {
	if def.Name == "" {
		return nil, errors.New("rule: rule needs a name")
	}
	r := &Rule{Name: def.Name, def: def, Enabled: !def.Disabled}
	var err error
	if r.EC, err = ParseCoupling(def.EC); err != nil {
		return nil, err
	}
	if r.CA, err = ParseCoupling(def.CA); err != nil {
		return nil, err
	}
	if r.Condition, err = cond.ParseCondition(def.Condition); err != nil {
		return nil, fmt.Errorf("rule %q: %w", def.Name, err)
	}
	if def.Event != "" {
		if r.Spec, err = event.Parse(def.Event); err != nil {
			return nil, fmt.Errorf("rule %q: %w", def.Name, err)
		}
	} else {
		r.Spec, err = deriveSpec(r.Condition)
		if err != nil {
			return nil, fmt.Errorf("rule %q: %w", def.Name, err)
		}
		r.Derived = true
	}
	for i, s := range def.Action {
		cs, err := compileStep(s)
		if err != nil {
			return nil, fmt.Errorf("rule %q action step %d: %w", def.Name, i+1, err)
		}
		r.Steps = append(r.Steps, cs)
	}
	return r, nil
}

// deriveSpec builds the event specification from the condition's
// footprint: any data operation on any class the condition reads
// (§2.1).
func deriveSpec(c cond.Condition) (event.Spec, error) {
	fp := c.Footprint()
	if len(fp.Classes) == 0 {
		return nil, errors.New("cannot derive an event from an empty condition; specify one")
	}
	var classes []string
	for cls := range fp.Classes {
		classes = append(classes, cls)
	}
	// Deterministic order for stable round-trips.
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	if len(classes) == 1 {
		return event.Database{Op: event.OpAny, Class: classes[0]}, nil
	}
	comp := event.Composite{Op: event.Disjunction}
	for _, cls := range classes {
		comp.Parts = append(comp.Parts, event.Database{Op: event.OpAny, Class: cls})
	}
	return comp, nil
}

func compileStep(s Step) (compiledStep, error) {
	cs := compiledStep{kind: s.Kind, class: s.Class, event: s.Event, op: s.Op, fn: s.Fn}
	var err error
	switch s.Kind {
	case StepCreate:
		if s.Class == "" {
			return cs, errors.New("create step needs a class")
		}
	case StepModify, StepDelete:
		if s.Target == "" {
			return cs, fmt.Errorf("%s step needs a target expression", s.Kind)
		}
		if cs.target, err = query.ParseExpr(s.Target); err != nil {
			return cs, fmt.Errorf("target: %w", err)
		}
	case StepSignal:
		if s.Event == "" {
			return cs, errors.New("signal step needs an event name")
		}
	case StepRequest:
		if s.Op == "" {
			return cs, errors.New("request step needs an operation name")
		}
	case StepCall:
		if s.Fn == "" {
			return cs, errors.New("call step needs a callback name")
		}
	case StepAbort:
	default:
		return cs, fmt.Errorf("unknown step kind %q", s.Kind)
	}
	if len(s.Attrs) > 0 {
		cs.attrs = map[string]query.Expr{}
		for k, src := range s.Attrs {
			if cs.attrs[k], err = query.ParseExpr(src); err != nil {
				return cs, fmt.Errorf("attribute %q: %w", k, err)
			}
		}
	}
	if len(s.Args) > 0 {
		cs.args = map[string]query.Expr{}
		for k, src := range s.Args {
			if cs.args[k], err = query.ParseExpr(src); err != nil {
				return cs, fmt.Errorf("argument %q: %w", k, err)
			}
		}
	}
	return cs, nil
}

// encodeDef serializes a definition for the "__rule" object.
func encodeDef(def Def, enabled bool) (map[string]datum.Value, error) {
	raw, err := json.Marshal(def)
	if err != nil {
		return nil, fmt.Errorf("rule: encode: %w", err)
	}
	return map[string]datum.Value{
		"name":    datum.Str(def.Name),
		"def":     datum.Str(string(raw)),
		"enabled": datum.Bool(enabled),
	}, nil
}

func decodeDef(attrs map[string]datum.Value) (Def, bool, error) {
	var def Def
	if err := json.Unmarshal([]byte(attrs["def"].AsString()), &def); err != nil {
		return Def{}, false, fmt.Errorf("rule: decode: %w", err)
	}
	return def, attrs["enabled"].AsBool(), nil
}

// AbortRequested is returned through the firing machinery when an
// action executes an abort step; it makes the triggering operation
// fail so the application (or the commit hook) aborts the triggering
// transaction — the standard constraint-enforcement pattern.
var AbortRequested = errors.New("rule: action requested abort")

// evalExprs evaluates a map of compiled expressions against the
// bindings.
func evalExprs(exprs map[string]query.Expr, reader query.Reader,
	vars, eventArgs map[string]datum.Value) (map[string]datum.Value, error) {
	out := make(map[string]datum.Value, len(exprs))
	for k, e := range exprs {
		v, err := query.EvalExpr(e, reader, vars, eventArgs)
		if err != nil {
			return nil, fmt.Errorf("expression for %q: %w", k, err)
		}
		out[k] = v
	}
	return out, nil
}

// RuleClass is the system class holding rule objects.
const RuleClass = "__rule"
