package rule

import (
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/event"
)

func TestParseCoupling(t *testing.T) {
	cases := map[string]Coupling{
		"immediate": Immediate,
		"deferred":  Deferred,
		"separate":  Separate,
		"":          Immediate, // default
	}
	for src, want := range cases {
		got, err := ParseCoupling(src)
		if err != nil || got != want {
			t.Errorf("ParseCoupling(%q) = %v, %v", src, got, err)
		}
	}
	if _, err := ParseCoupling("bogus"); err == nil {
		t.Error("bogus coupling accepted")
	}
	if Immediate.String() != "immediate" || Deferred.String() != "deferred" || Separate.String() != "separate" {
		t.Error("String names wrong")
	}
}

func TestCompileBasics(t *testing.T) {
	r, err := compile(Def{
		Name:      "r1",
		Event:     "modify(Stock)",
		Condition: []string{"select s from Stock s where s.price > 10"},
		Action: []Step{{
			Kind: StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'x'", "price": "event.new_price"},
		}},
		EC: "deferred", CA: "separate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.EC != Deferred || r.CA != Separate || r.Derived {
		t.Fatalf("compiled = %+v", r)
	}
	if r.EventString() != "modify(Stock)" {
		t.Fatalf("event = %q", r.EventString())
	}
	if len(r.Steps) != 1 || r.Steps[0].kind != StepCreate || len(r.Steps[0].attrs) != 2 {
		t.Fatalf("steps = %+v", r.Steps)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []Def{
		{},                             // no name
		{Name: "r", Event: "bogus(X)"}, // bad event
		{Name: "r", EC: "sometimes"},   // bad coupling
		{Name: "r", CA: "never"},       // bad coupling
		{Name: "r", Condition: []string{"not a query"}},
		{Name: "r"}, // no event and no condition to derive from
		{Name: "r", Event: "commit()", Action: []Step{{Kind: StepCreate}}},                // create without class
		{Name: "r", Event: "commit()", Action: []Step{{Kind: StepModify}}},                // modify without target
		{Name: "r", Event: "commit()", Action: []Step{{Kind: StepModify, Target: "1 +"}}}, // bad expr
		{Name: "r", Event: "commit()", Action: []Step{{Kind: StepSignal}}},                // signal without event
		{Name: "r", Event: "commit()", Action: []Step{{Kind: StepRequest}}},               // request without op
		{Name: "r", Event: "commit()", Action: []Step{{Kind: StepCall}}},                  // call without fn
		{Name: "r", Event: "commit()", Action: []Step{{Kind: "teleport"}}},                // unknown kind
		{Name: "r", Event: "commit()", Action: []Step{{Kind: StepCreate, Class: "C",
			Attrs: map[string]string{"a": "((("}}}}, // bad attr expr
	}
	for i, def := range cases {
		if _, err := compile(def); err == nil {
			t.Errorf("case %d (%+v) should fail to compile", i, def)
		}
	}
}

func TestDeriveSpecSingleClass(t *testing.T) {
	r, err := compile(Def{
		Name:      "d1",
		Condition: []string{"select s from Stock s where s.price > 10"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Derived || r.EventString() != "anyop(Stock)" {
		t.Fatalf("spec = %q", r.EventString())
	}
}

func TestDeriveSpecMultiClass(t *testing.T) {
	r, err := compile(Def{
		Name: "d2",
		Condition: []string{
			"select s from Stock s, Holding h where s.symbol = h.symbol",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := r.Spec.(event.Composite)
	if !ok || spec.Op != event.Disjunction || len(spec.Parts) != 2 {
		t.Fatalf("spec = %v", r.Spec)
	}
	// Deterministic class order.
	if r.EventString() != "or(anyop(Holding), anyop(Stock))" {
		t.Fatalf("spec = %q", r.EventString())
	}
}

func TestEncodeDecodeDef(t *testing.T) {
	def := Def{
		Name:      "round",
		Event:     "external(X)",
		Condition: []string{"select s from Stock s"},
		Action:    []Step{{Kind: StepSignal, Event: "Y", Args: map[string]string{"v": "event.v"}}},
		EC:        "separate", CA: "separate",
	}
	attrs, err := encodeDef(def, true)
	if err != nil {
		t.Fatal(err)
	}
	if attrs["name"].AsString() != "round" || !attrs["enabled"].AsBool() {
		t.Fatalf("attrs = %v", attrs)
	}
	got, enabled, err := decodeDef(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if !enabled || got.Name != def.Name || got.Event != def.Event ||
		len(got.Condition) != 1 || len(got.Action) != 1 || got.EC != "separate" {
		t.Fatalf("decoded = %+v", got)
	}
}

func TestDecodeDefGarbage(t *testing.T) {
	attrs, _ := encodeDef(Def{Name: "x", Event: "commit()"}, false)
	// Corrupt the JSON.
	s := attrs["def"].AsString()
	attrs["def"] = datum.Str(s[:len(s)/2])
	if _, _, err := decodeDef(attrs); err == nil {
		t.Fatal("corrupt def decoded")
	}
}

func TestDefinitionAccessor(t *testing.T) {
	def := Def{Name: "acc", Event: "commit()"}
	r, err := compile(def)
	if err != nil {
		t.Fatal(err)
	}
	if r.Definition().Name != "acc" {
		t.Fatal("Definition() lost the name")
	}
	if !strings.Contains(r.EventString(), "commit") {
		t.Fatal("EventString wrong")
	}
}
