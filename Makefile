# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench bench-baseline bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/rule/ ./internal/txn/ ./internal/lock/ \
		./internal/storage/ ./internal/wal/ ./internal/event/ \
		./internal/cep/ ./internal/object/ ./internal/core/ \
		./internal/server/ ./internal/failpoint/ ./internal/repl/ \
		./internal/plan/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s .

# bench-baseline re-measures the C16 parallel-scalability cells, the
# C17 composite-event cells, the C18 snapshot-scan race, the C19
# replication cells, the C20 planner join cells, and the C21
# parallel-executor cells, rewriting the committed baseline. Run it
# on a quiet machine after a deliberate perf change, and commit
# BENCH_10.json with the change that moved the numbers. On a noisy
# box, run it several times and keep the per-cell max — the committed
# baseline is a ceiling for the gate, not a scoreboard.
bench-baseline:
	$(GO) run ./cmd/hipac-bench -run C16,C17,C18,C19,C20,C21 -json BENCH_10.json

# bench-smoke is the CI regression gate: re-measure and fail if any
# C16-C21 cell is more than 20% slower than the committed baseline
# (skipped with a warning when the host CPU count or GOMAXPROCS
# differs from the baseline's).
bench-smoke:
	$(GO) run ./cmd/hipac-bench -run C16,C17,C18,C19,C20,C21 -compare BENCH_10.json
