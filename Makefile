# Developer entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench bench-baseline bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/rule/ ./internal/txn/ ./internal/lock/ \
		./internal/storage/ ./internal/wal/ ./internal/event/ \
		./internal/cep/ ./internal/object/ ./internal/core/ \
		./internal/server/ ./internal/failpoint/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 0.5s .

# bench-baseline re-measures the C16 parallel-scalability cells and
# C17 composite-event cells, rewriting the committed baseline. Run it
# on a quiet machine after a deliberate perf change, and commit
# BENCH_6.json with the change that moved the numbers.
bench-baseline:
	$(GO) run ./cmd/hipac-bench -run C16,C17 -json BENCH_6.json

# bench-smoke is the CI regression gate: re-measure and fail if any
# C16 or C17 cell is more than 20% slower than the committed baseline.
bench-smoke:
	$(GO) run ./cmd/hipac-bench -run C16,C17 -compare BENCH_6.json
