// Integrity constraints as ECA rules — the use-case the paper traces
// back to System R's triggers and assertions (§1). Two patterns:
//
//   - an IMMEDIATE rule that rejects a single bad operation the moment
//     it happens (the operation fails; the application aborts), and
//
//   - a DEFERRED rule that checks a multi-operation invariant at
//     commit (transfers may be momentarily unbalanced inside the
//     transaction, but the books must balance at the end) and aborts
//     the commit if violated.
//
//     go run ./examples/integrity
package main

import (
	"errors"
	"fmt"
	"log"

	hipac "repro"
)

func main() {
	db, err := hipac.Open(hipac.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tx := db.Begin()
	must(db.DefineClass(tx, hipac.Class{
		Name: "Account",
		Attrs: []hipac.AttrDef{
			{Name: "owner", Kind: hipac.KindString, Required: true},
			{Name: "balance", Kind: hipac.KindInt, Required: true},
		},
	}))
	alice, err := db.Create(tx, "Account", map[string]hipac.Value{
		"owner": hipac.Str("alice"), "balance": hipac.Int(100),
	})
	must(err)
	bob, err := db.Create(tx, "Account", map[string]hipac.Value{
		"owner": hipac.Str("bob"), "balance": hipac.Int(100),
	})
	must(err)
	must(tx.Commit())

	// Constraint 1 (immediate): no account may go negative. The rule
	// fires inside the triggering operation; its abort action makes
	// the operation itself fail.
	_, err = db.CreateRule(hipac.RuleDef{
		Name:      "no-overdrafts",
		Event:     "modify(Account)",
		Condition: []string{"select a from Account a where a = event.oid and event.new_balance < 0"},
		Action:    []hipac.Step{{Kind: hipac.StepAbort}},
		EC:        "immediate", CA: "immediate",
	})
	must(err)

	// Constraint 2 (deferred): total money is conserved. Checked once
	// per event at commit, against the final state, via a call step
	// that errors when the invariant is broken — which aborts the
	// commit.
	db.RegisterCall("check-conservation", func(tx *hipac.Txn, _ map[string]hipac.Value) error {
		res, err := db.Query(tx, "select sum(a.balance) as total from Account a", nil)
		if err != nil {
			return err
		}
		if got := res.Rows[0][0].AsInt(); got != 200 {
			return fmt.Errorf("conservation violated: total = %d, want 200", got)
		}
		return nil
	})
	_, err = db.CreateRule(hipac.RuleDef{
		Name:   "books-balance",
		Event:  "modify(Account)",
		Action: []hipac.Step{{Kind: hipac.StepCall, Fn: "check-conservation"}},
		EC:     "deferred", CA: "immediate",
	})
	must(err)

	// --- exercise constraint 1 ---
	fmt.Println("attempting an overdraft (alice -= 150):")
	t1 := db.Begin()
	err = db.Modify(t1, alice, map[string]hipac.Value{"balance": hipac.Int(-50)})
	if errors.Is(err, hipac.AbortRequested) {
		fmt.Printf("  rejected immediately: %v\n", err)
	} else {
		fmt.Printf("  UNEXPECTED: %v\n", err)
	}
	t1.Abort()

	// --- exercise constraint 2 ---
	fmt.Println("\nattempting an unbalanced transfer (alice -= 30, bob += 20):")
	t2 := db.Begin()
	must(db.Modify(t2, alice, map[string]hipac.Value{"balance": hipac.Int(70)}))
	must(db.Modify(t2, bob, map[string]hipac.Value{"balance": hipac.Int(120)}))
	if err := t2.Commit(); err != nil {
		fmt.Printf("  commit refused: %v\n", err)
	}

	fmt.Println("\na balanced transfer (alice -= 30, bob += 30):")
	t3 := db.Begin()
	must(db.Modify(t3, alice, map[string]hipac.Value{"balance": hipac.Int(70)}))
	must(db.Modify(t3, bob, map[string]hipac.Value{"balance": hipac.Int(130)}))
	if err := t3.Commit(); err != nil {
		fmt.Printf("  UNEXPECTED refusal: %v\n", err)
	} else {
		fmt.Println("  committed")
	}

	// --- final state ---
	t4 := db.Begin()
	defer t4.Commit()
	res, err := db.Query(t4, "select a.owner, a.balance from Account a", nil)
	must(err)
	fmt.Println("\nfinal balances:")
	for _, row := range res.Rows {
		fmt.Printf("  %s: %s\n", row[0], row[1])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
