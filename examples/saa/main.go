// The Securities Analyst's Assistant (§4.2 of the paper, Figure 4.2):
// three application programs — Ticker, Display, Trader — connected to
// a HiPAC server over IPC, interacting only through ECA rule firings.
// The control logic lives in the rules, not in the programs.
//
//	go run ./examples/saa [-quotes 40] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/feed"
	"repro/internal/saa"
	"repro/internal/server"
)

func main() {
	quotes := flag.Int("quotes", 150, "number of quotes to replay")
	seed := flag.Int64("seed", 1, "feed seed")
	flag.Parse()

	// --- the DBMS: a HiPAC server ---
	eng, err := core.Open(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("HiPAC serving on %s\n\n", addr)

	// --- setup: schema, portfolio, event, rules ---
	setup := dial(addr)
	defer setup.Close()
	tx := begin(setup)
	for _, cls := range saa.Classes() {
		must(setup.DefineClass(tx, cls))
	}
	gen := feed.New(feed.Config{Seed: *seed, InitialPrice: 48, Volatility: 0.03})
	stockOIDs := map[string]datum.OID{}
	for _, sym := range gen.Symbols() {
		oid, err := setup.Create(tx, saa.ClassStock, map[string]datum.Value{
			"symbol": datum.Str(sym), "price": datum.Float(48),
		})
		must(err)
		stockOIDs[sym] = oid
	}
	holding, err := setup.Create(tx, saa.ClassHolding, map[string]datum.Value{
		"owner": datum.Str("clientA"), "symbol": datum.Str("XRX"), "qty": datum.Int(0),
	})
	must(err)
	must(tx.Commit())
	must(setup.DefineEvent(saa.EventTradeExecuted, saa.TradeEventParams...))

	// The paper's rules: display every quote; buy 500 XRX for
	// clientA when the price reaches 50; apply and display trades.
	must(setup.CreateRule(saa.DisplayQuoteRule("display-ticker")))
	must(setup.CreateRule(saa.BuyAtRule("buy-500-XRX-at-50", "clientA", "XRX", 500, 50)))
	must(setup.CreateRule(saa.PortfolioUpdateRule("portfolio-update")))
	must(setup.CreateRule(saa.DisplayTradeRule("display-trade")))

	// --- Display program ---
	display := dial(addr)
	defer display.Close()
	must(display.Serve(map[string]client.Handler{
		saa.OpDisplayQuote: func(args map[string]datum.Value) (map[string]datum.Value, error) {
			fmt.Printf("  [display]  %-4s %8.2f\n",
				args["symbol"].AsString(), args["price"].AsFloat())
			return nil, nil
		},
		saa.OpDisplayTrade: func(args map[string]datum.Value) (map[string]datum.Value, error) {
			fmt.Printf("  [display]  TRADE %s bought %d %s at %.2f\n",
				args["owner"].AsString(), args["qty"].AsInt(),
				args["symbol"].AsString(), args["price"].AsFloat())
			return nil, nil
		},
	}))

	// --- Trader program ---
	trader := dial(addr)
	defer trader.Close()
	var traded atomic.Bool
	must(trader.Serve(map[string]client.Handler{
		saa.OpExecuteTrade: func(args map[string]datum.Value) (map[string]datum.Value, error) {
			if !traded.CompareAndSwap(false, true) {
				return map[string]datum.Value{"status": datum.Str("duplicate-ignored")}, nil
			}
			fmt.Printf("  [trader]   executing: %d %s for %s at %.2f\n",
				args["qty"].AsInt(), args["symbol"].AsString(),
				args["owner"].AsString(), args["price"].AsFloat())
			go func() {
				// Disable the standing order, then report the fill.
				if err := trader.DisableRule("buy-500-XRX-at-50"); err != nil {
					log.Printf("trader: disable: %v", err)
				}
				ttx, err := trader.Begin()
				if err != nil {
					return
				}
				if err := trader.SignalEvent(ttx, saa.EventTradeExecuted, args); err != nil {
					ttx.Abort()
					log.Printf("trader: signal: %v", err)
					return
				}
				ttx.Commit()
			}()
			return map[string]datum.Value{"status": datum.Str("sent")}, nil
		},
	}))

	// --- Ticker program: replay the wire ---
	ticker := dial(addr)
	defer ticker.Close()
	fmt.Printf("replaying %d quotes...\n", *quotes)
	for i := 0; i < *quotes; i++ {
		q := gen.Next()
		qt := begin(ticker)
		must(ticker.Modify(qt, stockOIDs[q.Symbol], map[string]datum.Value{
			"price": datum.Float(q.Price),
		}))
		must(qt.Commit())
	}

	// Let asynchronous rule firings drain, then show the portfolio.
	time.Sleep(300 * time.Millisecond)
	eng.Quiesce()
	final := begin(setup)
	obj, err := setup.Get(final, holding)
	must(err)
	final.Commit()
	fmt.Printf("\nportfolio of clientA: %d XRX\n", obj.Attrs["qty"].AsInt())
	fmt.Println("note: no program ever called another — all flow went through rules")
}

func dial(addr string) *client.Client {
	c, err := client.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func begin(c *client.Client) *client.Txn {
	tx, err := c.Begin()
	if err != nil {
		log.Fatal(err)
	}
	return tx
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
