// Quickstart: open an active database, define a class, attach an ECA
// rule, and watch it fire when data changes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hipac "repro"
)

func main() {
	db, err := hipac.Open(hipac.Options{}) // in-memory
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// 1. Define a schema (operations on data, inside a transaction).
	tx := db.Begin()
	must(db.DefineClass(tx, hipac.Class{
		Name: "Stock",
		Attrs: []hipac.AttrDef{
			{Name: "symbol", Kind: hipac.KindString, Required: true},
			{Name: "price", Kind: hipac.KindFloat, Indexed: true},
		},
	}))
	must(db.DefineClass(tx, hipac.Class{
		Name: "Alert",
		Attrs: []hipac.AttrDef{
			{Name: "symbol", Kind: hipac.KindString},
			{Name: "price", Kind: hipac.KindFloat},
		},
	}))
	xrx, err := db.Create(tx, "Stock", map[string]hipac.Value{
		"symbol": hipac.Str("XRX"), "price": hipac.Float(48),
	})
	must(err)
	must(tx.Commit())

	// 2. Create an ECA rule: when a Stock is modified and its new
	// price is at least 50, record an Alert — immediately, in a
	// subtransaction of the triggering transaction.
	_, err = db.CreateRule(hipac.RuleDef{
		Name:      "alert-at-50",
		Event:     "modify(Stock)",
		Condition: []string{"select s.symbol as sym from Stock s where s = event.oid and event.new_price >= 50"},
		Action: []hipac.Step{{
			Kind: hipac.StepCreate, Class: "Alert",
			Attrs: map[string]string{"symbol": "sym", "price": "event.new_price"},
		}},
		EC: "immediate", CA: "immediate",
	})
	must(err)

	// 3. Update data; the rule fires (or not) as part of the update.
	for _, price := range []float64{49, 50.25, 51.5} {
		tx := db.Begin()
		must(db.Modify(tx, xrx, map[string]hipac.Value{"price": hipac.Float(price)}))
		must(tx.Commit())
		fmt.Printf("updated XRX to %.2f\n", price)
	}

	// 4. The alerts are ordinary data.
	tx = db.Begin()
	defer tx.Commit()
	res, err := db.Query(tx, "select a.symbol, a.price from Alert a", nil)
	must(err)
	fmt.Printf("\n%d alert(s):\n", len(res.Rows))
	for _, row := range res.Rows {
		fmt.Printf("  %s at %s\n", row[0], row[1])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
