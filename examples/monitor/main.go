// Alerters on temporal and composite events — the monitoring use-case
// of §2.1: absolute events ("at 09:30"), periodic events ("every
// minute"), relative events anchored on other events ("30 seconds
// after the market opens"), and a sequence composite ("an order
// placed and THEN cancelled"). Runs on a virtual clock so the demo is
// instant and deterministic.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"
	"time"

	hipac "repro"
)

func main() {
	epoch := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	clk := hipac.NewVirtualClock(epoch)
	db, err := hipac.Open(hipac.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	say := func(tag string) hipac.CallFunc {
		return func(_ *hipac.Txn, b map[string]hipac.Value) error {
			// Temporal signals carry the instant they fired at; other
			// events print the current virtual time.
			at := clk.Now()
			if t, ok := b["time"]; ok {
				at = t.AsTime()
			}
			fmt.Printf("  %s  %s\n", at.UTC().Format("15:04:05"), tag)
			return nil
		}
	}
	db.RegisterCall("opening-bell", say("opening bell: market is open"))
	db.RegisterCall("minute-tick", say("periodic health check"))
	db.RegisterCall("post-open", say("30s after open: liquidity check"))
	db.RegisterCall("cancel-watch", say("ALERT: order placed and then cancelled"))

	must(db.DefineEvent("MarketOpen"))
	must(db.DefineEvent("OrderPlaced", "id"))
	must(db.DefineEvent("OrderCancelled", "id"))

	// Absolute: at 09:30 sharp.
	_, err = db.CreateRule(hipac.RuleDef{
		Name:   "opening-bell",
		Event:  "at(2026-07-06T09:30:00Z)",
		Action: []hipac.Step{{Kind: hipac.StepCall, Fn: "opening-bell"}},
	})
	must(err)

	// Periodic: every 10 minutes.
	_, err = db.CreateRule(hipac.RuleDef{
		Name:   "health-check",
		Event:  "every(10m)",
		Action: []hipac.Step{{Kind: hipac.StepCall, Fn: "minute-tick"}},
	})
	must(err)

	// Relative with a baseline event: 30s after MarketOpen is
	// signalled.
	_, err = db.CreateRule(hipac.RuleDef{
		Name:   "post-open-check",
		Event:  "after(external(MarketOpen), 30s)",
		Action: []hipac.Step{{Kind: hipac.StepCall, Fn: "post-open"}},
	})
	must(err)

	// Sequence composite: an order placed and then cancelled.
	_, err = db.CreateRule(hipac.RuleDef{
		Name:   "cancel-after-place",
		Event:  "seq(external(OrderPlaced), external(OrderCancelled))",
		Action: []hipac.Step{{Kind: hipac.StepCall, Fn: "cancel-watch"}},
	})
	must(err)

	fmt.Println("simulated trading morning (virtual clock):")

	// 09:00 -> 09:30: health checks, then the bell. Stepping the
	// clock minute by minute (quiescing between steps) keeps the
	// asynchronous firings in order for the printout.
	step := func(minutes int) {
		for i := 0; i < minutes; i++ {
			clk.Advance(time.Minute)
			db.Quiesce()
		}
	}
	step(30)

	// The exchange signals the open; the relative rule arms.
	must(db.SignalEvent(nil, "MarketOpen", nil))
	step(1)

	// Orders flow; one is cancelled after being placed.
	must(db.SignalEvent(nil, "OrderPlaced", map[string]hipac.Value{"id": hipac.Int(1)}))
	must(db.SignalEvent(nil, "OrderCancelled", map[string]hipac.Value{"id": hipac.Int(1)}))
	db.Quiesce()

	// The rest of the hour.
	step(29)
	fmt.Println("done (simulated 10:00)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
