// Derived data maintained by ECA rules — another classic active-DBMS
// capability the paper's introduction motivates ("declarative rules
// for expressing relationships between data items"). A per-sector
// summary object tracks how many stocks each sector holds and their
// total value; rules keep it consistent as stocks are created,
// repriced, and deleted. The summary is recomputed by a deferred rule
// at commit, so a transaction that moves several stocks pays for one
// refresh, not one per update.
//
//	go run ./examples/derived
package main

import (
	"fmt"
	"log"

	hipac "repro"
)

func main() {
	db, err := hipac.Open(hipac.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tx := db.Begin()
	must(db.DefineClass(tx, hipac.Class{
		Name: "Stock",
		Attrs: []hipac.AttrDef{
			{Name: "symbol", Kind: hipac.KindString, Required: true},
			{Name: "sector", Kind: hipac.KindString, Required: true, Indexed: true},
			{Name: "price", Kind: hipac.KindFloat},
		},
	}))
	must(db.DefineClass(tx, hipac.Class{
		Name: "SectorSummary",
		Attrs: []hipac.AttrDef{
			{Name: "sector", Kind: hipac.KindString, Required: true, Indexed: true},
			{Name: "count", Kind: hipac.KindInt},
			{Name: "total", Kind: hipac.KindFloat},
		},
	}))
	must(tx.Commit())

	// The refresh callback recomputes every sector's summary from the
	// base data (materialized-view maintenance, recompute flavour).
	db.RegisterCall("refresh-summaries", func(tx *hipac.Txn, _ map[string]hipac.Value) error {
		sectors, err := db.Query(tx, "select s.sector as sec from Stock s", nil)
		if err != nil {
			return err
		}
		seen := map[string]bool{}
		for i := range sectors.Rows {
			sec := sectors.RowBindings(i)["sec"].AsString()
			if seen[sec] {
				continue
			}
			seen[sec] = true
			agg, err := db.Query(tx,
				"select count(*) as n, sum(s.price) as total from Stock s where s.sector = event.sec",
				map[string]hipac.Value{"sec": hipac.Str(sec)})
			if err != nil {
				return err
			}
			n := agg.Rows[0][0]
			total := agg.Rows[0][1]
			existing, err := db.Query(tx,
				"select m from SectorSummary m where m.sector = event.sec",
				map[string]hipac.Value{"sec": hipac.Str(sec)})
			if err != nil {
				return err
			}
			if existing.Empty() {
				_, err = db.Create(tx, "SectorSummary", map[string]hipac.Value{
					"sector": hipac.Str(sec), "count": n, "total": hipac.Float(total.AsFloat()),
				})
			} else {
				err = db.Modify(tx, existing.Rows[0][0].AsOID(), map[string]hipac.Value{
					"count": n, "total": hipac.Float(total.AsFloat()),
				})
			}
			if err != nil {
				return err
			}
		}
		return nil
	})

	// One deferred rule per data operation kind keeps the summary
	// fresh as of each commit. The event spec is DERIVED from the
	// condition when omitted; here we give it explicitly to cover
	// create, modify, and delete.
	_, err = db.CreateRule(hipac.RuleDef{
		Name:   "maintain-sector-summaries",
		Event:  "or(create(Stock), modify(Stock), delete(Stock))",
		Action: []hipac.Step{{Kind: hipac.StepCall, Fn: "refresh-summaries"}},
		EC:     "deferred", CA: "immediate",
	})
	must(err)

	// Load a portfolio in one transaction: the summary refresh runs
	// once per queued firing at commit, against the final state.
	load := db.Begin()
	stocks := []struct {
		sym, sector string
		price       float64
	}{
		{"XRX", "tech", 50}, {"IBM", "tech", 120}, {"DEC", "tech", 30},
		{"GM", "auto", 45}, {"F", "auto", 12},
	}
	oids := map[string]hipac.OID{}
	for _, s := range stocks {
		oid, err := db.Create(load, "Stock", map[string]hipac.Value{
			"symbol": hipac.Str(s.sym), "sector": hipac.Str(s.sector), "price": hipac.Float(s.price),
		})
		must(err)
		oids[s.sym] = oid
	}
	must(load.Commit())
	printSummaries(db, "after loading 5 stocks")

	// Reprice tech in one transaction.
	reprice := db.Begin()
	must(db.Modify(reprice, oids["XRX"], map[string]hipac.Value{"price": hipac.Float(55)}))
	must(db.Modify(reprice, oids["IBM"], map[string]hipac.Value{"price": hipac.Float(125)}))
	must(reprice.Commit())
	printSummaries(db, "after repricing XRX and IBM")

	// Delete a stock.
	del := db.Begin()
	must(db.Delete(del, oids["F"]))
	must(del.Commit())
	printSummaries(db, "after deleting F")
}

func printSummaries(db *hipac.Engine, title string) {
	tx := db.Begin()
	defer tx.Commit()
	res, err := db.Query(tx,
		"select m.sector as sec, m.count as n, m.total as total from SectorSummary m", nil)
	must(err)
	fmt.Printf("%s:\n", title)
	for i := range res.Rows {
		b := res.RowBindings(i)
		fmt.Printf("  %-6s count=%d total=%.2f\n",
			b["sec"].AsString(), b["n"].AsInt(), b["total"].AsFloat())
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
