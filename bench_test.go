// Benchmarks regenerating the experiments in DESIGN.md's
// per-experiment index (C1..C12, plus the SAA pipeline of F4.2).
// cmd/hipac-bench runs the same workloads as parameter sweeps and
// prints the tables recorded in EXPERIMENTS.md.
package hipac_test

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	hipac "repro"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/rule"
	"repro/internal/saa"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/workload"
)

func mustB(b *testing.B, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
}

func setupEngine(b *testing.B) *core.Engine {
	b.Helper()
	e, _ := workload.MustEngine()
	b.Cleanup(func() { e.Close() })
	mustB(b, workload.DefineBase(e))
	e.RegisterCall("noop", func(*txn.Txn, map[string]datum.Value) error { return nil })
	return e
}

// --- C1: coupling-mode cost (one rule, one update per iteration) ---

func BenchmarkCouplingModes(b *testing.B) {
	for _, ec := range []string{"immediate", "deferred", "separate"} {
		for _, ca := range []string{"immediate", "deferred", "separate"} {
			b.Run(ec+"-"+ca, func(b *testing.B) {
				e := setupEngine(b)
				oids, err := workload.SeedStocks(e, 1)
				mustB(b, err)
				_, err = e.CreateRule(workload.AuditRuleDef("audit", ec, ca))
				mustB(b, err)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mustB(b, workload.UpdateOne(e, oids[0], float64(i)))
				}
				e.Quiesce()
			})
		}
	}
}

// --- C2: sibling concurrency vs serial baseline ---

const siblingWork = 200_000 // Spin iterations per action

func BenchmarkSiblingConcurrency(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 1)
			mustB(b, err)
			var sink atomic.Int64
			e.RegisterCall("work", func(*txn.Txn, map[string]datum.Value) error {
				sink.Add(workload.Spin(siblingWork))
				return nil
			})
			for _, def := range workload.CallRuleDefs(n, "work") {
				_, err := e.CreateRule(def)
				mustB(b, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustB(b, workload.UpdateOne(e, oids[0], float64(i)))
			}
		})
	}
}

func BenchmarkSiblingSerialBaseline(b *testing.B) {
	// The same total work executed serially by one firing.
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 1)
			mustB(b, err)
			var sink atomic.Int64
			e.RegisterCall("workN", func(*txn.Txn, map[string]datum.Value) error {
				for k := 0; k < n; k++ {
					sink.Add(workload.Spin(siblingWork))
				}
				return nil
			})
			_, err = e.CreateRule(rule.Def{
				Name:   "serial",
				Event:  "modify(Stock)",
				Action: []rule.Step{{Kind: rule.StepCall, Fn: "workN"}},
				EC:     "immediate", CA: "immediate",
			})
			mustB(b, err)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustB(b, workload.UpdateOne(e, oids[0], float64(i)))
			}
		})
	}
}

// --- C3: cascade depth ---

func BenchmarkCascadeDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("d=%d", depth), func(b *testing.B) {
			e := setupEngine(b)
			first, err := workload.CascadeChain(e, depth)
			mustB(b, err)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := e.Begin()
				_, err := e.Create(tx, first, map[string]datum.Value{"x": datum.Int(0)})
				mustB(b, err)
				mustB(b, tx.Commit())
			}
		})
	}
}

// --- C4: condition-graph sharing vs naive, and incremental cache ---

func BenchmarkConditionGraphShared(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 200)
			mustB(b, err)
			for _, def := range workload.SharedConditionRules(n, 1.0) {
				_, err := e.CreateRule(def)
				mustB(b, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustB(b, workload.UpdateOne(e, oids[i%200], float64(i)))
			}
		})
	}
}

func BenchmarkConditionNaive(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 200)
			mustB(b, err)
			for _, def := range workload.SharedConditionRules(n, 0.0) {
				_, err := e.CreateRule(def)
				mustB(b, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustB(b, workload.UpdateOne(e, oids[i%200], float64(i)))
			}
		})
	}
}

func BenchmarkIncrementalEval(b *testing.B) {
	// Event-free condition evaluated by separate (clean) firings:
	// the cross-event cache answers repeats until the class changes.
	run := func(b *testing.B, eventFree bool) {
		e := setupEngine(b)
		_, err := workload.SeedStocks(e, 500)
		mustB(b, err)
		tx := e.Begin()
		mustB(b, e.DefineClass(tx, hipac.Class{Name: "Tick",
			Attrs: []hipac.AttrDef{{Name: "x", Kind: hipac.KindInt}}}))
		mustB(b, tx.Commit())
		cond := "select s from Stock s where s.price >= 0"
		if !eventFree {
			cond = "select s from Stock s where s.price >= 0 + event.zero * 0"
		}
		_, err = e.CreateRule(rule.Def{
			Name:      "watcher",
			Event:     "create(Tick)",
			Condition: []string{cond},
			Action:    []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
			EC:        "separate", CA: "immediate",
		})
		mustB(b, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := e.Begin()
			_, err := e.Create(tx, "Tick", map[string]datum.Value{"x": datum.Int(int64(i))})
			mustB(b, err)
			mustB(b, tx.Commit())
			if i%100 == 99 {
				e.Quiesce() // bound in-flight separate firings
			}
		}
		e.Quiesce()
	}
	b.Run("cached", func(b *testing.B) { run(b, true) })
	b.Run("uncached", func(b *testing.B) { run(b, false) })
}

// --- C5: active-vs-passive overhead ---

func BenchmarkPassiveBaseline(b *testing.B) {
	e := setupEngine(b)
	oids, err := workload.SeedStocks(e, 100)
	mustB(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustB(b, workload.UpdateOne(e, oids[i%100], float64(i)))
	}
}

func BenchmarkActiveNoMatch(b *testing.B) {
	e := setupEngine(b)
	oids, err := workload.SeedStocks(e, 100)
	mustB(b, err)
	mustB(b, workload.NonMatchingRules(e, 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustB(b, workload.UpdateOne(e, oids[i%100], float64(i)))
	}
}

func BenchmarkActiveDisabled(b *testing.B) {
	e := setupEngine(b)
	oids, err := workload.SeedStocks(e, 100)
	mustB(b, err)
	mustB(b, workload.DisabledRules(e, 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustB(b, workload.UpdateOne(e, oids[i%100], float64(i)))
	}
}

// --- C6: composite event detection ---

func BenchmarkCompositeDetection(b *testing.B) {
	for _, shape := range []struct {
		name string
		spec string
	}{
		{"or", "or(external(A), external(B))"},
		{"seq", "seq(external(A), external(B))"},
		{"and", "and(external(A), external(B))"},
	} {
		b.Run(shape.name, func(b *testing.B) {
			e := setupEngine(b)
			mustB(b, e.DefineEvent("A"))
			mustB(b, e.DefineEvent("B"))
			_, err := e.CreateRule(rule.Def{
				Name:   "composite",
				Event:  shape.spec,
				Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
				EC:     "immediate", CA: "immediate",
			})
			mustB(b, err)
			tx := e.Begin()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := "A"
				if i%2 == 1 {
					name = "B"
				}
				mustB(b, e.SignalEvent(tx, name, nil))
			}
			b.StopTimer()
			mustB(b, tx.Commit())
		})
	}
}

// --- C7: deferred-set size vs commit latency ---

func BenchmarkDeferredCommit(b *testing.B) {
	for _, n := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("deferred=%d", n), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 1)
			mustB(b, err)
			_, err = e.CreateRule(workload.AuditRuleDef("audit", "deferred", "immediate"))
			mustB(b, err)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := e.Begin()
				for k := 0; k < n; k++ {
					mustB(b, e.Modify(tx, oids[0], map[string]datum.Value{
						"price": datum.Float(float64(k))}))
				}
				mustB(b, tx.Commit()) // n deferred firings drain here
			}
		})
	}
}

// --- C8: nested transaction overhead ---

func BenchmarkNestedTxnOverhead(b *testing.B) {
	for _, depth := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 1)
			mustB(b, err)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				top := e.Begin()
				cur := top
				chain := make([]*txn.Txn, 0, depth)
				ok := true
				for d := 0; d < depth; d++ {
					c, err := cur.Child()
					mustB(b, err)
					chain = append(chain, c)
					cur = c
				}
				mustB(b, e.Modify(cur, oids[0], map[string]datum.Value{
					"price": datum.Float(float64(i))}))
				for j := len(chain) - 1; j >= 0; j-- {
					mustB(b, chain[j].Commit())
				}
				mustB(b, top.Commit())
				_ = ok
			}
		})
	}
}

// --- C9: rule read-lock acquisition on the firing path ---

func BenchmarkRuleLockContention(b *testing.B) {
	// Firing takes a read lock per rule; many rules on one event
	// means many lock acquisitions per update.
	for _, n := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 1)
			mustB(b, err)
			for _, def := range workload.CallRuleDefs(n, "noop") {
				_, err := e.CreateRule(def)
				mustB(b, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustB(b, workload.UpdateOne(e, oids[0], float64(i)))
			}
		})
	}
}

// --- C10: disabled-rule cost at signal time ---

func BenchmarkDisabledRuleCost(b *testing.B) {
	for _, n := range []int{0, 100, 1000} {
		b.Run(fmt.Sprintf("disabled=%d", n), func(b *testing.B) {
			e := setupEngine(b)
			oids, err := workload.SeedStocks(e, 1)
			mustB(b, err)
			mustB(b, workload.DisabledRules(e, n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustB(b, workload.UpdateOne(e, oids[0], float64(i)))
			}
		})
	}
}

// --- C11: temporal scheduling ---

func BenchmarkTemporalScheduling(b *testing.B) {
	for _, n := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("periodic=%d", n), func(b *testing.B) {
			e, clk := workload.MustEngine()
			defer e.Close()
			mustB(b, workload.DefineBase(e))
			e.RegisterCall("noop", func(*txn.Txn, map[string]datum.Value) error { return nil })
			for i := 0; i < n; i++ {
				_, err := e.CreateRule(rule.Def{
					Name:   fmt.Sprintf("tick-%03d", i),
					Event:  "every(1s)",
					Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
					EC:     "immediate", CA: "immediate", // no txn: runs as separate
				})
				mustB(b, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clk.Advance(time.Second) // fires all n periodic rules
				e.Quiesce()
			}
		})
	}
}

// --- C12: external signal round trip, in-process and over IPC ---

func BenchmarkExternalSignal(b *testing.B) {
	e := setupEngine(b)
	mustB(b, e.DefineEvent("Ping", "n"))
	_, err := e.CreateRule(rule.Def{
		Name:   "on-ping",
		Event:  "external(Ping)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
		EC:     "immediate", CA: "immediate",
	})
	mustB(b, err)
	tx := e.Begin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustB(b, e.SignalEvent(tx, "Ping", map[string]datum.Value{"n": datum.Int(int64(i))}))
	}
	b.StopTimer()
	mustB(b, tx.Commit())
}

func BenchmarkExternalSignalIPC(b *testing.B) {
	e := setupEngine(b)
	srv := server.New(e)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	mustB(b, err)
	go srv.Serve(ln)
	defer srv.Close()
	c, err := client.Dial(ln.Addr().String())
	mustB(b, err)
	defer c.Close()
	mustB(b, c.DefineEvent("Ping", "n"))
	mustB(b, c.CreateRule(rule.Def{
		Name:   "on-ping",
		Event:  "external(Ping)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
		EC:     "immediate", CA: "immediate",
	}))
	tx, err := c.Begin()
	mustB(b, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustB(b, c.SignalEvent(tx, "Ping", map[string]datum.Value{"n": datum.Int(int64(i))}))
	}
	b.StopTimer()
	mustB(b, tx.Commit())
}

// --- F4.2: the SAA pipeline, quotes end to end ---

func BenchmarkSAAPipeline(b *testing.B) {
	e, _ := workload.MustEngine()
	defer e.Close()
	tx := e.Begin()
	for _, cls := range saa.Classes() {
		mustB(b, e.DefineClass(tx, cls))
	}
	gen := feed.New(feed.Config{Seed: 1})
	oids := map[string]datum.OID{}
	for _, sym := range gen.Symbols() {
		oid, err := e.Create(tx, saa.ClassStock, map[string]datum.Value{
			"symbol": datum.Str(sym), "price": datum.Float(50),
		})
		mustB(b, err)
		oids[sym] = oid
	}
	mustB(b, tx.Commit())
	mustB(b, e.DefineEvent(saa.EventTradeExecuted, saa.TradeEventParams...))
	var displayed atomic.Int64
	e.RegisterAppOperation(saa.OpDisplayQuote, func(map[string]datum.Value) (map[string]datum.Value, error) {
		displayed.Add(1)
		return nil, nil
	})
	_, err := e.CreateRule(saa.DisplayQuoteRule("display-ticker"))
	mustB(b, err)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := gen.Next()
		qt := e.Begin()
		mustB(b, e.Modify(qt, oids[q.Symbol], map[string]datum.Value{
			"price": datum.Float(q.Price)}))
		mustB(b, qt.Commit())
		if i%256 == 255 {
			e.Quiesce()
		}
	}
	e.Quiesce()
	b.StopTimer()
	if displayed.Load() == 0 {
		b.Fatal("display never invoked")
	}
}

// --- ablations: design choices called out in DESIGN.md ---

// BenchmarkIndexVsScan ablates the secondary index: the same
// point-predicate condition evaluated with and without an index on
// the attribute.
func BenchmarkIndexVsScan(b *testing.B) {
	run := func(b *testing.B, indexed bool) {
		e, _ := workload.MustEngine()
		b.Cleanup(func() { e.Close() })
		tx := e.Begin()
		attrs := []hipac.AttrDef{
			{Name: "symbol", Kind: hipac.KindString, Required: true},
			{Name: "price", Kind: hipac.KindFloat, Indexed: indexed},
		}
		mustB(b, e.DefineClass(tx, hipac.Class{Name: "Stock", Attrs: attrs}))
		mustB(b, tx.Commit())
		seed := e.Begin()
		for i := 0; i < 2000; i++ {
			_, err := e.Create(seed, "Stock", map[string]datum.Value{
				"symbol": datum.Str(fmt.Sprintf("S%05d", i)),
				"price":  datum.Float(float64(i)),
			})
			mustB(b, err)
		}
		mustB(b, seed.Commit())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := e.Begin()
			res, err := e.Query(tx, "select s from Stock s where s.price = 1234", nil)
			mustB(b, err)
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
			mustB(b, tx.Commit())
		}
	}
	b.Run("indexed", func(b *testing.B) { run(b, true) })
	b.Run("scan", func(b *testing.B) { run(b, false) })
}

// BenchmarkObsOverhead ablates the observability subsystem: the same
// rule-firing update loop with histograms+tracing on (the default)
// and fully disabled. The enabled/disabled delta is the total
// instrumentation cost on the hot path.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, disabled bool) {
		e, err := core.Open(core.Options{
			Clock: hipac.NewVirtualClock(workload.Epoch),
			Obs:   obs.Options{Disabled: disabled},
		})
		mustB(b, err)
		b.Cleanup(func() { e.Close() })
		mustB(b, workload.DefineBase(e))
		oids, err := workload.SeedStocks(e, 1)
		mustB(b, err)
		_, err = e.CreateRule(workload.AuditRuleDef("audit", "immediate", "immediate"))
		mustB(b, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustB(b, workload.UpdateOne(e, oids[0], float64(i)))
		}
	}
	b.Run("enabled", func(b *testing.B) { run(b, false) })
	b.Run("disabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkParallelCommit measures durable-commit throughput with
// concurrent top-level committers (run with -cpu 1,2,4,8 to sweep).
// Each goroutine owns a distinct object, so committers contend only
// on the store and the log — the paths group commit is meant to
// scale. Compare wal-fsync across -cpu values: with group commit,
// ns/op should drop as committers share flushes.
func BenchmarkParallelCommit(b *testing.B) {
	run := func(b *testing.B, dir string, noSync bool) {
		e, err := core.Open(core.Options{Dir: dir, NoSync: noSync,
			Clock: hipac.NewVirtualClock(workload.Epoch)})
		mustB(b, err)
		b.Cleanup(func() { e.Close() })
		mustB(b, workload.DefineBase(e))
		oids, err := workload.SeedStocks(e, 128)
		mustB(b, err)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			oid := oids[int(next.Add(1)-1)%len(oids)]
			i := 0
			for pb.Next() {
				tx := e.Begin()
				mustB(b, e.Modify(tx, oid, map[string]datum.Value{
					"price": datum.Float(float64(i))}))
				mustB(b, tx.Commit())
				i++
			}
		})
		b.StopTimer()
		st := e.Store.Stats()
		if st.TopCommits > 0 {
			b.ReportMetric(float64(st.WALFsyncs)/float64(st.TopCommits), "fsyncs/commit")
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, "", true) })
	b.Run("wal-nosync", func(b *testing.B) { run(b, b.TempDir(), true) })
	b.Run("wal-fsync", func(b *testing.B) { run(b, b.TempDir(), false) })
}

// BenchmarkParallelRead measures in-memory read throughput with
// concurrent readers (run with -cpu 1,2,4,8 to sweep). "get" is pure
// point reads; "mixed" adds one committed update per ten reads, with
// writers touching a disjoint OID range so the benchmark measures
// store/lock-manager contention rather than transaction conflicts.
// Reader transactions are recycled every 512 operations to bound
// lock-table growth.
func BenchmarkParallelRead(b *testing.B) {
	run := func(b *testing.B, writeEvery int) {
		e, err := core.Open(core.Options{Clock: hipac.NewVirtualClock(workload.Epoch)})
		mustB(b, err)
		b.Cleanup(func() { e.Close() })
		mustB(b, workload.DefineBase(e))
		oids, err := workload.SeedStocks(e, 2048)
		mustB(b, err)
		readPool, writePool := oids[:1024], oids[1024:]
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			seq := int(next.Add(1))
			wOID := writePool[(seq-1)%len(writePool)]
			tx := e.Begin()
			i := 0
			for pb.Next() {
				i++
				if writeEvery > 0 && i%writeEvery == 0 {
					wtx := e.Begin()
					mustB(b, e.Modify(wtx, wOID, map[string]datum.Value{
						"price": datum.Float(float64(i))}))
					mustB(b, wtx.Commit())
					continue
				}
				if i%512 == 0 {
					mustB(b, tx.Commit())
					tx = e.Begin()
				}
				oid := readPool[(i*31+seq*17)%len(readPool)]
				_, err := e.Get(tx, oid)
				mustB(b, err)
			}
			mustB(b, tx.Commit())
		})
	}
	b.Run("get", func(b *testing.B) { run(b, 0) })
	b.Run("mixed", func(b *testing.B) { run(b, 10) })
}

// BenchmarkCheckpointDuringCommits measures how much a running fuzzy
// checkpointer perturbs the commit path (C14). Sub-runs toggle the
// background checkpointer against the same parallel-commit workload;
// the non-quiescent design is held to commit p99 within 2x of the
// checkpointer-off baseline. Reported extras: checkpoints taken during
// the run and the commit-stall p99 from the engine's histograms.
func BenchmarkCheckpointDuringCommits(b *testing.B) {
	run := func(b *testing.B, noSync bool, interval time.Duration) {
		e, err := core.Open(core.Options{Dir: b.TempDir(), NoSync: noSync,
			CheckpointInterval: interval,
			Clock:              hipac.NewVirtualClock(workload.Epoch)})
		mustB(b, err)
		b.Cleanup(func() { e.Close() })
		mustB(b, workload.DefineBase(e))
		oids, err := workload.SeedStocks(e, 128)
		mustB(b, err)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			oid := oids[int(next.Add(1)-1)%len(oids)]
			i := 0
			for pb.Next() {
				tx := e.Begin()
				mustB(b, e.Modify(tx, oid, map[string]datum.Value{
					"price": datum.Float(float64(i))}))
				mustB(b, tx.Commit())
				i++
			}
		})
		b.StopTimer()
		st := e.Store.Stats()
		b.ReportMetric(float64(st.Checkpoints), "checkpoints")
		if h := e.Obs.Snapshot().Hist["commit_stall"]; h.Count > 0 {
			b.ReportMetric(float64(h.Quantile(0.99).Nanoseconds()), "stall-p99-ns")
		}
	}
	b.Run("nosync-ckpt-off", func(b *testing.B) { run(b, true, 0) })
	b.Run("nosync-ckpt-5ms", func(b *testing.B) { run(b, true, 5*time.Millisecond) })
	b.Run("fsync-ckpt-off", func(b *testing.B) { run(b, false, 0) })
	b.Run("fsync-ckpt-25ms", func(b *testing.B) { run(b, false, 25*time.Millisecond) })
}

// BenchmarkWALDurability ablates the write-ahead log: committed
// update cost in-memory, with a WAL (no fsync), and with fsync.
func BenchmarkWALDurability(b *testing.B) {
	run := func(b *testing.B, dir string, noSync bool) {
		e, err := core.Open(core.Options{Dir: dir, NoSync: noSync,
			Clock: hipac.NewVirtualClock(workload.Epoch)})
		mustB(b, err)
		b.Cleanup(func() { e.Close() })
		mustB(b, workload.DefineBase(e))
		oids, err := workload.SeedStocks(e, 1)
		mustB(b, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustB(b, workload.UpdateOne(e, oids[0], float64(i)))
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, "", true) })
	b.Run("wal-nosync", func(b *testing.B) { run(b, b.TempDir(), true) })
	b.Run("wal-fsync", func(b *testing.B) { run(b, b.TempDir(), false) })
}
