package main

// Smoke test: build and run the real hipacd binary, connect a client,
// exercise a durable round trip, and shut it down cleanly.

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/datum"
	"repro/internal/object"
)

func TestHipacdEndToEnd(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "hipacd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Pick a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dir := t.TempDir()
	cmd := exec.Command(bin, "-addr", addr, "-dir", dir, "-nosync")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the listener.
	var c *client.Client
	deadline := time.Now().Add(10 * time.Second)
	for {
		c, err = client.Dial(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DefineClass(tx, object.Class{
		Name:  "K",
		Attrs: []object.AttrDef{{Name: "v", Kind: datum.KindInt}},
	}); err != nil {
		t.Fatal(err)
	}
	oid, err := c.Create(tx, "K", map[string]datum.Value{"v": datum.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Graceful shutdown, then restart on the same directory: the data
	// must have survived in the WAL.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2 := exec.Command(bin, "-addr", addr, "-dir", dir, "-nosync")
	cmd2.Stdout = os.Stderr
	cmd2.Stderr = os.Stderr
	if err := cmd2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	deadline = time.Now().Add(10 * time.Second)
	for {
		c, err = client.Dial(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted server never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer c.Close()
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := c.Get(tx2, oid)
	if err != nil || obj.Attrs["v"].AsInt() != 7 {
		t.Fatalf("durable object after restart: %+v (%v)", obj, err)
	}
	tx2.Commit()
}
