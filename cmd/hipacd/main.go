// Command hipacd runs a HiPAC active-DBMS server: an engine (with
// optional durability directory) exposed over TCP to application
// programs speaking the ipc protocol (see internal/client for the Go
// client library and cmd/hipac-cli for an interactive shell).
//
// Usage:
//
//	hipacd [-addr 127.0.0.1:4815] [-dir /var/lib/hipac] [-nosync]
//	       [-group-window 0] [-checkpoint-interval 0]
//	       [-checkpoint-after-bytes 0] [-checkpoint-compact-every 0]
//	       [-store-shards 16] [-cep-shards 16] [-metrics :9090]
//
// With -metrics, an HTTP listener serves the engine's counters and
// latency histograms in Prometheus text format at /metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4815", "listen address")
	dir := flag.String("dir", "", "durability directory (empty: in-memory)")
	nosync := flag.Bool("nosync", false, "disable fsync on the write-ahead log")
	window := flag.Duration("group-window", 0,
		"group-commit dwell: flush leaders wait this long to widen batches (0: flush immediately)")
	ckptEvery := flag.Duration("checkpoint-interval", 0,
		"run a fuzzy checkpoint (snapshot + WAL truncation, no commit quiesce) at this period (0: disabled)")
	ckptBytes := flag.Uint64("checkpoint-after-bytes", 0,
		"also checkpoint whenever the WAL grows this many bytes past the last checkpoint (0: disabled)")
	ckptCompact := flag.Int("checkpoint-compact-every", 0,
		"compact the delta chain into a full snapshot after this many deltas (0: adaptive — compact when delta bytes reach half the snapshot size)")
	shards := flag.Int("store-shards", 0,
		"hash partitions of the in-memory heap, rounded up to a power of two (0: default 16)")
	cepShards := flag.Int("cep-shards", 0,
		"hash partitions of each composite-event template's correlation-instance map (0: default 16)")
	metrics := flag.String("metrics", "", "Prometheus /metrics listen address (empty: disabled)")
	flag.Parse()

	eng, err := core.Open(core.Options{Dir: *dir, NoSync: *nosync, GroupCommitWindow: *window,
		CheckpointInterval: *ckptEvery, CheckpointAfterBytes: *ckptBytes,
		CheckpointCompactEvery: *ckptCompact, StoreShards: *shards, CEPShards: *cepShards})
	if err != nil {
		log.Fatalf("hipacd: open engine: %v", err)
	}
	srv := server.New(eng)

	var msrv *http.Server
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := eng.WritePrometheus(w); err != nil {
				log.Printf("hipacd: metrics: %v", err)
			}
		})
		msrv = &http.Server{Addr: *metrics, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("hipacd: metrics listener: %v", err)
			}
		}()
		fmt.Printf("hipacd: metrics on http://%s/metrics\n", *metrics)
	}

	// The signal goroutine only closes the server; ListenAndServe then
	// returns nil (close is flagged before the listener shuts), and
	// main — never the goroutine — tears down the engine and exits, so
	// a SIGTERM cannot race eng.Close with process exit.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Printf("hipacd: shutting down")
		srv.Close()
	}()

	fmt.Printf("hipacd: serving on %s (dir=%q)\n", *addr, *dir)
	serveErr := srv.ListenAndServe(*addr)
	if msrv != nil {
		msrv.Close()
	}
	if err := eng.Close(); err != nil {
		log.Printf("hipacd: close: %v", err)
	}
	if serveErr != nil {
		log.Fatalf("hipacd: %v", serveErr)
	}
}
