// Command hipacd runs a HiPAC active-DBMS server: an engine (with
// optional durability directory) exposed over TCP to application
// programs speaking the ipc protocol (see internal/client for the Go
// client library and cmd/hipac-cli for an interactive shell).
//
// Usage:
//
//	hipacd [-addr 127.0.0.1:4815] [-dir /var/lib/hipac] [-nosync]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4815", "listen address")
	dir := flag.String("dir", "", "durability directory (empty: in-memory)")
	nosync := flag.Bool("nosync", false, "disable fsync on the write-ahead log")
	flag.Parse()

	eng, err := core.Open(core.Options{Dir: *dir, NoSync: *nosync})
	if err != nil {
		log.Fatalf("hipacd: open engine: %v", err)
	}
	srv := server.New(eng)

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		log.Printf("hipacd: shutting down")
		srv.Close()
		if err := eng.Close(); err != nil {
			log.Printf("hipacd: close: %v", err)
		}
		os.Exit(0)
	}()

	fmt.Printf("hipacd: serving on %s (dir=%q)\n", *addr, *dir)
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("hipacd: %v", err)
	}
}
