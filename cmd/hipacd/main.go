// Command hipacd runs a HiPAC active-DBMS server: an engine (with
// optional durability directory) exposed over TCP to application
// programs speaking the ipc protocol (see internal/client for the Go
// client library and cmd/hipac-cli for an interactive shell).
//
// Usage:
//
//	hipacd [-addr 127.0.0.1:4815] [-dir /var/lib/hipac] [-nosync]
//	       [-group-window 0] [-checkpoint-interval 0]
//	       [-checkpoint-after-bytes 0] [-checkpoint-compact-every 0]
//	       [-store-shards 16] [-cep-shards 16] [-metrics :9090]
//	       [-repl-listen 127.0.0.1:4816] [-replica-of HOST:4816]
//
// With -metrics, an HTTP listener serves the engine's counters and
// latency histograms in Prometheus text format at /metrics.
//
// With -repl-listen (and no -replica-of), the node additionally ships
// its WAL to read replicas on that address. With -replica-of, the
// node runs as a read replica of the named primary: it bootstraps
// from the primary's snapshot chain into -dir, tails its WAL stream,
// and serves read-only traffic on -addr until `hipac-cli promote`
// recovers it into a normal writable server.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"repro/internal/core"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4815", "listen address")
	dir := flag.String("dir", "", "durability directory (empty: in-memory)")
	nosync := flag.Bool("nosync", false, "disable fsync on the write-ahead log")
	window := flag.Duration("group-window", 0,
		"group-commit dwell: flush leaders wait this long to widen batches (0: flush immediately)")
	ckptEvery := flag.Duration("checkpoint-interval", 0,
		"run a fuzzy checkpoint (snapshot + WAL truncation, no commit quiesce) at this period (0: disabled)")
	ckptBytes := flag.Uint64("checkpoint-after-bytes", 0,
		"also checkpoint whenever the WAL grows this many bytes past the last checkpoint (0: disabled)")
	ckptCompact := flag.Int("checkpoint-compact-every", 0,
		"compact the delta chain into a full snapshot after this many deltas (0: adaptive — compact when delta bytes reach half the snapshot size)")
	shards := flag.Int("store-shards", 0,
		"hash partitions of the in-memory heap, rounded up to a power of two (0: default 16)")
	cepShards := flag.Int("cep-shards", 0,
		"hash partitions of each composite-event template's correlation-instance map (0: default 16)")
	metrics := flag.String("metrics", "", "Prometheus /metrics listen address (empty: disabled)")
	replListen := flag.String("repl-listen", "",
		"WAL shipping listen address for read replicas (empty: replication disabled)")
	replicaOf := flag.String("replica-of", "",
		"run as a read replica of the primary's -repl-listen address (requires -dir)")
	treeWalk := flag.Bool("tree-walk-queries", false,
		"evaluate queries and rule conditions with the legacy tree-walk evaluator instead of the cost-based planner")
	queryPar := flag.Int("query-parallelism", 0,
		"worker cap for parallel query plan steps (shard-parallel scans, partitioned hash joins); 0: derive from GOMAXPROCS, 1: serial")
	flag.Parse()

	if *replicaOf != "" {
		runReplica(*addr, *dir, *replicaOf, *metrics, replicaConfig{
			nosync: *nosync, shards: *shards, ckptBytes: *ckptBytes, ckptCompact: *ckptCompact,
			queryPar: *queryPar})
		return
	}

	eng, err := core.Open(core.Options{Dir: *dir, NoSync: *nosync, GroupCommitWindow: *window,
		CheckpointInterval: *ckptEvery, CheckpointAfterBytes: *ckptBytes,
		CheckpointCompactEvery: *ckptCompact, StoreShards: *shards, CEPShards: *cepShards,
		TreeWalkQueries: *treeWalk, QueryParallelism: *queryPar})
	if err != nil {
		log.Fatalf("hipacd: open engine: %v", err)
	}
	srv := server.New(eng)

	var prim *repl.Primary
	if *replListen != "" {
		if *dir == "" {
			log.Fatalf("hipacd: -repl-listen needs -dir (an in-memory store has no WAL to ship)")
		}
		prim = repl.NewPrimary(eng.Store, eng.Obs.Metrics())
		srv.SetReplStatus(prim.Status)
		go func() {
			if err := prim.ListenAndServe(*replListen); err != nil {
				log.Printf("hipacd: repl listener: %v", err)
			}
		}()
		fmt.Printf("hipacd: shipping WAL on %s\n", *replListen)
	}

	msrv := serveMetrics(*metrics, func(w http.ResponseWriter) error {
		if err := eng.WritePrometheus(w); err != nil {
			return err
		}
		if prim != nil {
			return prim.WritePrometheus(w)
		}
		return nil
	})

	// The signal goroutine only closes the server; ListenAndServe then
	// returns nil (close is flagged before the listener shuts), and
	// main — never the goroutine — tears down the engine and exits, so
	// a SIGTERM cannot race eng.Close with process exit.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Printf("hipacd: shutting down")
		srv.Close()
	}()

	fmt.Printf("hipacd: serving on %s (dir=%q)\n", *addr, *dir)
	serveErr := srv.ListenAndServe(*addr)
	if prim != nil {
		prim.Close()
	}
	if msrv != nil {
		msrv.Close()
	}
	if err := eng.Close(); err != nil {
		log.Printf("hipacd: close: %v", err)
	}
	if serveErr != nil {
		log.Fatalf("hipacd: %v", serveErr)
	}
}

type replicaConfig struct {
	nosync      bool
	shards      int
	ckptBytes   uint64
	ckptCompact int
	queryPar    int
}

// runReplica serves read-only traffic from a replica of the primary
// until promoted: then it stops the replica server, reopens the data
// directory as a full engine, and serves writable traffic on the same
// address.
func runReplica(addr, dir, primaryAddr, metrics string, cfg replicaConfig) {
	if dir == "" {
		log.Fatalf("hipacd: -replica-of needs -dir")
	}
	rep, err := repl.Open(repl.Options{Dir: dir, PrimaryAddr: primaryAddr,
		NoSync: cfg.nosync, Shards: cfg.shards,
		CheckpointAfterBytes: cfg.ckptBytes, CompactEvery: cfg.ckptCompact})
	if err != nil {
		log.Fatalf("hipacd: open replica: %v", err)
	}

	var promotedDir atomic.Value // string: set once Promote succeeds
	promoteCh := make(chan struct{})
	readSrv := repl.NewServer(rep, func() (uint64, error) {
		applied := uint64(rep.AppliedLSN())
		d, err := rep.Promote()
		if err != nil {
			return 0, err
		}
		promotedDir.Store(d)
		close(promoteCh)
		return applied, nil
	})

	msrv := serveMetrics(metrics, func(w http.ResponseWriter) error {
		return rep.WritePrometheus(w)
	})

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-sigCh:
			log.Printf("hipacd: shutting down")
		case <-promoteCh:
			log.Printf("hipacd: promoted; restarting as primary")
		}
		readSrv.Close()
	}()

	fmt.Printf("hipacd: replica of %s serving reads on %s (dir=%q)\n", primaryAddr, addr, dir)
	serveErr := readSrv.ListenAndServe(addr)
	if msrv != nil {
		msrv.Close()
	}
	d, wasPromoted := promotedDir.Load().(string)
	if !wasPromoted {
		rep.Close()
		if serveErr != nil {
			log.Fatalf("hipacd: %v", serveErr)
		}
		return
	}

	// Promotion: the replica store is closed and flushed; reopen it as
	// a writable engine on the same address. The brief listener gap is
	// the cost of the manual-failover design.
	eng, err := core.Open(core.Options{Dir: d, NoSync: cfg.nosync, StoreShards: cfg.shards,
		QueryParallelism: cfg.queryPar})
	if err != nil {
		log.Fatalf("hipacd: promote: open engine on %s: %v", d, err)
	}
	srv := server.New(eng)
	go func() {
		<-sigCh
		log.Printf("hipacd: shutting down")
		srv.Close()
	}()
	fmt.Printf("hipacd: promoted; serving writes on %s (dir=%q)\n", addr, d)
	serveErr = srv.ListenAndServe(addr)
	if err := eng.Close(); err != nil {
		log.Printf("hipacd: close: %v", err)
	}
	if serveErr != nil {
		log.Fatalf("hipacd: %v", serveErr)
	}
}

// serveMetrics starts the Prometheus listener when addr is set.
func serveMetrics(addr string, write func(http.ResponseWriter) error) *http.Server {
	if addr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := write(w); err != nil {
			log.Printf("hipacd: metrics: %v", err)
		}
	})
	msrv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Printf("hipacd: metrics listener: %v", err)
		}
	}()
	fmt.Printf("hipacd: metrics on http://%s/metrics\n", addr)
	return msrv
}
