// C16 and the machine-readable result plumbing. C16 is the
// scalability smoke: a fixed set of parallel workloads (point reads,
// mixed read/write, committed updates in memory and against a no-sync
// WAL) each measured at GOMAXPROCS 1 and 8. Its per-op results feed
// -json (the committed BENCH_5.json baseline) and -compare (the CI
// regression gate).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/workload"
)

// benchSchema names the -json file format.
const benchSchema = "hipac-bench/v1"

// benchFile is the -json / -compare file format: a flat metric map so
// diffing two runs is a key-by-key ratio.
type benchFile struct {
	Schema     string             `json:"schema"`
	Go         string             `json:"go"`
	NumCPU     int                `json:"num_cpu"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Metrics    map[string]float64 `json:"metrics"` // name -> ns/op
}

var metricsOut = struct {
	sync.Mutex
	m map[string]float64
}{m: map[string]float64{}}

func recordMetric(name string, nsPerOp float64) {
	metricsOut.Lock()
	metricsOut.m[name] = nsPerOp
	metricsOut.Unlock()
}

// writeBenchJSON writes every metric recorded during this run.
func writeBenchJSON(path string) error {
	out := benchFile{Schema: benchSchema, Go: runtime.Version(),
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Metrics: metricsOut.m}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareBenchJSON checks this run's metrics against a baseline file,
// failing if any shared metric regressed by more than threshold
// (0.20 = 20% slower). Metrics only on one side are reported but not
// fatal, so adding or retiring a workload doesn't break the gate. A
// baseline recorded with a different num_cpu downgrades the whole
// comparison to informational: deltas print, nothing fails.
func compareBenchJSON(path string, threshold float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	// A baseline captured on a different CPU count is not comparable:
	// the parallel cells (p8 scalability, committer races) shift with
	// core count, so ratio gating would flag hardware, not code.
	// Report the deltas for the record but never fail.
	gate := true
	if base.NumCPU != 0 && base.NumCPU != runtime.NumCPU() {
		fmt.Printf("WARNING: baseline %s recorded on %d CPUs, this host has %d: "+
			"reporting deltas but skipping the regression gate\n",
			path, base.NumCPU, runtime.NumCPU())
		gate = false
	}
	// GOMAXPROCS matters the same way num_cpu does: the parallel cells
	// (C16/C17 p8, C21 scan/join scaling) measure oversubscription when
	// GOMAXPROCS < workers, so a baseline from a differently capped
	// runtime is informational only.
	if base.GoMaxProcs != 0 && base.GoMaxProcs != runtime.GOMAXPROCS(0) {
		fmt.Printf("WARNING: baseline %s recorded at GOMAXPROCS=%d, this run has %d: "+
			"reporting deltas but skipping the regression gate\n",
			path, base.GoMaxProcs, runtime.GOMAXPROCS(0))
		gate = false
	}
	names := make([]string, 0, len(base.Metrics))
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("=== compare vs %s (fail over +%.0f%%) ===\n", path, threshold*100)
	var failed []string
	for _, name := range names {
		baseNs := base.Metrics[name]
		curNs, ok := metricsOut.m[name]
		if !ok {
			row(name, "not measured this run")
			continue
		}
		delta := curNs/baseNs - 1
		verdict := "ok"
		if baseNs > 0 && delta > threshold {
			if gate {
				verdict = "REGRESSED"
				failed = append(failed, name)
			} else {
				verdict = "over threshold (not gated)"
			}
		}
		row(name, fmt.Sprintf("base %.0fns", baseNs), fmt.Sprintf("now %.0fns", curNs),
			fmt.Sprintf("%+.1f%%", delta*100), verdict)
	}
	for name := range metricsOut.m {
		if _, ok := base.Metrics[name]; !ok {
			row(name, "new metric (no baseline)")
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%: %v",
			len(failed), threshold*100, failed)
	}
	if gate {
		fmt.Println("no regressions")
	} else {
		fmt.Println("comparison informational only (num_cpu mismatch)")
	}
	return nil
}

// runParallel runs procs copies of body at GOMAXPROCS=procs until the
// deadline and returns wall-clock ns per completed operation summed
// across workers (the same accounting testing.B uses for RunParallel).
func runParallel(procs int, dur time.Duration, body func(w int, stop *atomic.Bool) (int, error)) (float64, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	var stop atomic.Bool
	var total atomic.Int64
	errs := make(chan error, procs)
	var wg sync.WaitGroup
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	defer timer.Stop()
	start := time.Now()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n, err := body(w, &stop)
			total.Add(int64(n))
			if err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	if total.Load() == 0 {
		return 0, fmt.Errorf("no operations completed in %v", dur)
	}
	return float64(elapsed.Nanoseconds()) / float64(total.Load()), nil
}

// smokeRead returns a read-heavy parallel workload: point reads over a
// 1024-object pool, with one committed update per writeEvery reads
// against a disjoint pool (0 = pure reads). Reader transactions are
// recycled every 512 operations to bound lock-list growth.
func smokeRead(writeEvery int) func(procs int, dur time.Duration) (float64, error) {
	return func(procs int, dur time.Duration) (float64, error) {
		e, _ := workload.MustEngine()
		defer e.Close()
		if err := workload.DefineBase(e); err != nil {
			return 0, err
		}
		oids, err := workload.SeedStocks(e, 2048)
		if err != nil {
			return 0, err
		}
		readPool, writePool := oids[:1024], oids[1024:]
		return runParallel(procs, dur, func(w int, stop *atomic.Bool) (int, error) {
			wOID := writePool[w%len(writePool)]
			tx := e.Begin()
			i := 0
			for !stop.Load() {
				i++
				if writeEvery > 0 && i%writeEvery == 0 {
					wtx := e.Begin()
					if err := e.Modify(wtx, wOID, map[string]datum.Value{
						"price": datum.Float(float64(i))}); err != nil {
						return i, err
					}
					if err := wtx.Commit(); err != nil {
						return i, err
					}
					continue
				}
				if i%512 == 0 {
					if err := tx.Commit(); err != nil {
						return i, err
					}
					tx = e.Begin()
				}
				oid := readPool[(i*31+w*17)%len(readPool)]
				if _, err := e.Get(tx, oid); err != nil {
					return i, err
				}
			}
			return i, tx.Commit()
		})
	}
}

// smokeCommit returns a parallel committed-update workload; each
// worker owns a distinct object so contention is on the store and the
// log, not on transaction conflicts. wal selects a no-sync WAL
// directory versus pure in-memory.
func smokeCommit(wal bool) func(procs int, dur time.Duration) (float64, error) {
	return func(procs int, dur time.Duration) (float64, error) {
		dir := ""
		if wal {
			var err error
			dir, err = os.MkdirTemp("", "hipac-bench-c16-")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
		}
		e, err := core.Open(core.Options{Dir: dir, NoSync: true,
			Clock: clock.NewVirtual(workload.Epoch)})
		if err != nil {
			return 0, err
		}
		defer e.Close()
		if err := workload.DefineBase(e); err != nil {
			return 0, err
		}
		oids, err := workload.SeedStocks(e, 128)
		if err != nil {
			return 0, err
		}
		return runParallel(procs, dur, func(w int, stop *atomic.Bool) (int, error) {
			oid := oids[w%len(oids)]
			i := 0
			for !stop.Load() {
				i++
				tx := e.Begin()
				if err := e.Modify(tx, oid, map[string]datum.Value{
					"price": datum.Float(float64(i))}); err != nil {
					return i, err
				}
				if err := tx.Commit(); err != nil {
					return i, err
				}
			}
			return i, nil
		})
	}
}

// expC16 sweeps the smoke workloads across GOMAXPROCS 1 and 8, taking
// the best of three timed runs per cell to damp scheduler noise. The
// p8/p1 ratio is the scalability signal: under 1.0 means added
// concurrency helps, and the gap versus 1.0 is the serialization the
// sharded store still pays.
func expC16(quick bool) error {
	dur := 250 * time.Millisecond
	reps := 3
	if quick {
		dur = 80 * time.Millisecond
		reps = 2
	}
	workloads := []struct {
		name string
		run  func(procs int, dur time.Duration) (float64, error)
	}{
		{"read-get", smokeRead(0)},
		{"read-mixed", smokeRead(10)},
		{"commit-memory", smokeCommit(false)},
		{"commit-wal-nosync", smokeCommit(true)},
	}
	row("workload", "p1", "p8", "p8/p1")
	for _, wl := range workloads {
		best := map[int]float64{}
		for _, procs := range []int{1, 8} {
			for r := 0; r < reps; r++ {
				ns, err := wl.run(procs, dur)
				if err != nil {
					return fmt.Errorf("%s @%d procs: %w", wl.name, procs, err)
				}
				if best[procs] == 0 || ns < best[procs] {
					best[procs] = ns
				}
			}
			recordMetric(fmt.Sprintf("C16/%s/p%d", wl.name, procs), best[procs])
		}
		row(wl.name,
			time.Duration(best[1]).Round(time.Nanosecond),
			time.Duration(best[8]).Round(time.Nanosecond),
			fmt.Sprintf("%.2f", best[8]/best[1]))
	}
	return nil
}
