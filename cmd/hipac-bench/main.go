// Command hipac-bench regenerates the experiments in DESIGN.md's
// per-experiment index and prints one table per experiment; the
// results recorded in EXPERIMENTS.md come from this tool.
//
// Usage:
//
//	hipac-bench [-run all|F41|F42|C1|...|C21] [-quick]
//	           [-json out.json] [-compare baseline.json] [-regress-threshold 0.20]
//
// -json writes the metrics recorded during the run (today: C16's
// parallel-scalability cells, C17's composite-event cells, C18's
// snapshot-scan race cells, C19's replication cells, C20's
// planner-vs-tree-walk join cells, and C21's parallel-executor
// cells) as a flat name -> ns/op map; the committed BENCH_10.json
// baseline is produced with `make bench-baseline`. -compare
// re-measures and fails (exit 1) if any metric shared with the
// baseline regressed beyond the threshold — CI runs the bench smoke
// against BENCH_10.json.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/rule"
	"repro/internal/saa"
	"repro/internal/server"
	"repro/internal/txn"
	"repro/internal/workload"
)

func main() {
	run := flag.String("run", "all", "experiment ids (F41, F42, C1..C21), comma-separated, or all")
	quick := flag.Bool("quick", false, "smaller iteration counts")
	jsonPath := flag.String("json", "", "write recorded metrics (name -> ns/op) to this file")
	comparePath := flag.String("compare", "", "fail if recorded metrics regress beyond the threshold vs this baseline JSON")
	threshold := flag.Float64("regress-threshold", 0.20, "relative slowdown tolerated by -compare")
	flag.Parse()

	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	selected := ids
	if *run != "all" {
		selected = nil
		for _, part := range strings.Split(*run, ",") {
			want := strings.ToUpper(strings.TrimSpace(part))
			if _, ok := experiments[want]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; have %s\n", part, strings.Join(ids, " "))
				os.Exit(1)
			}
			selected = append(selected, want)
		}
	}
	warmProcess()
	for _, id := range selected {
		fmt.Printf("=== %s: %s ===\n", id, titles[id])
		if err := experiments[id](*quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *comparePath != "" {
		if err := compareBenchJSON(*comparePath, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "bench regression gate: %v\n", err)
			os.Exit(1)
		}
	}
}

var titles = map[string]string{
	"F41": "Figure 4.1 — application/DBMS interface over IPC",
	"F42": "Figure 4.2 — SAA pipeline throughput",
	"C1":  "coupling-mode cost per triggering update",
	"C2":  "concurrent sibling firings vs serial baseline",
	"C3":  "cascade depth cost",
	"C4":  "condition-graph sharing vs naive evaluation",
	"C5":  "active-vs-passive DML overhead",
	"C6":  "composite event detection cost",
	"C7":  "commit latency vs deferred-set size",
	"C8":  "nested transaction depth overhead",
	"C9":  "rule read-lock cost on the firing path",
	"C10": "disabled-rule cost at signal time",
	"C11": "temporal scheduling cost",
	"C12": "external signal round trip (in-process vs IPC)",
	"C13": "parallel commit throughput under WAL group commit",
	"C14": "commit latency under a running fuzzy checkpointer",
	"C15": "commit p99 under size-triggered delta checkpoints",
	"C16": "sharded-store parallel scalability: reads and commits at 1 and 8 procs",
	"C17": "composite-event runtime: signals/sec vs active-instance count and rule fan-out",
	"C18": "MVCC read path: long snapshot scans racing committers",
	"C19": "WAL shipping: replica read throughput and lag vs primary commit rate",
	"C20": "query planning: join-heavy condition over 1M holdings, planner vs tree-walk",
	"C21": "parallel execution: scan, 3-way hash join, and aggregate at plan parallelism 1/2/8",
}

var experiments = map[string]func(quick bool) error{
	"F41": expF41, "F42": expF42,
	"C1": expC1, "C2": expC2, "C3": expC3, "C4": expC4,
	"C5": expC5, "C6": expC6, "C7": expC7, "C8": expC8,
	"C9": expC9, "C10": expC10, "C11": expC11, "C12": expC12,
	"C13": expC13, "C14": expC14, "C15": expC15, "C16": expC16,
	"C17": expC17, "C18": expC18, "C19": expC19, "C20": expC20,
	"C21": expC21,
}

// measure warms the path up, then runs fn iters times and returns
// the mean duration per iteration.
func measure(iters int, fn func(i int) error) (time.Duration, error) {
	warm := iters / 10
	if warm > 50 {
		warm = 50
	}
	for i := 0; i < warm; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

func iters(quick bool, full int) int {
	if quick {
		if full >= 100 {
			return full / 10
		}
		return full
	}
	return full
}

func row(cols ...any) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	fmt.Printf("  %-28s %s\n", parts[0], strings.Join(parts[1:], "  "))
}

// tailRow prints p50/p99 rows for the named histograms from the
// engine's observability snapshot, so the experiment tables copied
// into EXPERIMENTS.md report tail latency alongside per-op means.
func tailRow(e *core.Engine, names ...string) {
	snap := e.Obs.Snapshot()
	for _, name := range names {
		h, ok := snap.Hist[name]
		if !ok || h.Count == 0 {
			continue
		}
		if obs.HistIsCount(name) {
			row(name+" mean/p50/p99", fmt.Sprintf("%.1f", h.MeanCount()),
				h.QuantileCount(0.5), h.QuantileCount(0.99))
			continue
		}
		row(name+" p50/p99", h.Quantile(0.5), h.Quantile(0.99))
	}
}

// warmProcess exercises an engine once so the first measured
// experiment doesn't pay the process's allocator and GC growth.
func warmProcess() {
	e, err := newBase()
	if err != nil {
		return
	}
	defer e.Close()
	oids, err := workload.SeedStocks(e, 10)
	if err != nil {
		return
	}
	for i := 0; i < 1000; i++ {
		_ = workload.UpdateOne(e, oids[i%10], float64(i))
	}
}

func newBase() (*core.Engine, error) {
	e, _ := workload.MustEngine()
	if err := workload.DefineBase(e); err != nil {
		return nil, err
	}
	e.RegisterCall("noop", func(*txn.Txn, map[string]datum.Value) error { return nil })
	return e, nil
}

// --- F41 ---

func expF41(quick bool) error {
	e, err := newBase()
	if err != nil {
		return err
	}
	defer e.Close()
	srv := server.New(e)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()

	app, err := client.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer app.Close()
	var called atomic.Int64
	if err := app.Serve(map[string]client.Handler{
		"echo": func(args map[string]datum.Value) (map[string]datum.Value, error) {
			called.Add(1)
			return args, nil
		},
	}); err != nil {
		return err
	}
	if _, err := e.CreateRule(rule.Def{
		Name:  "callback",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepRequest, Op: "echo",
			Args: map[string]string{"p": "event.new_price"}}},
		EC: "immediate", CA: "immediate",
	}); err != nil {
		return err
	}

	tx, err := app.Begin()
	if err != nil {
		return err
	}
	oid, err := app.Create(tx, "Stock", map[string]datum.Value{"symbol": datum.Str("XRX")})
	if err != nil {
		return err
	}
	n := iters(quick, 2000)
	per, err := measure(n, func(i int) error {
		return app.Modify(tx, oid, map[string]datum.Value{"price": datum.Float(float64(i))})
	})
	if err != nil {
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	row("module", "result")
	row("data+txn ops over IPC", "ok")
	row("event ops over IPC", "ok")
	row("app-callback round trips", called.Load())
	row("update->rule->callback", per, "per update")
	return nil
}

// --- F42 ---

func expF42(quick bool) error {
	e, _ := workload.MustEngine()
	defer e.Close()
	tx := e.Begin()
	for _, cls := range saa.Classes() {
		if err := e.DefineClass(tx, cls); err != nil {
			return err
		}
	}
	gen := feed.New(feed.Config{Seed: 1})
	oids := map[string]datum.OID{}
	for _, sym := range gen.Symbols() {
		oid, err := e.Create(tx, saa.ClassStock, map[string]datum.Value{
			"symbol": datum.Str(sym), "price": datum.Float(50),
		})
		if err != nil {
			return err
		}
		oids[sym] = oid
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if err := e.DefineEvent(saa.EventTradeExecuted, saa.TradeEventParams...); err != nil {
		return err
	}
	var displayed atomic.Int64
	e.RegisterAppOperation(saa.OpDisplayQuote, func(map[string]datum.Value) (map[string]datum.Value, error) {
		displayed.Add(1)
		return nil, nil
	})
	if _, err := e.CreateRule(saa.DisplayQuoteRule("display-ticker")); err != nil {
		return err
	}
	n := iters(quick, 5000)
	per, err := measure(n, func(i int) error {
		q := gen.Next()
		qt := e.Begin()
		if err := e.Modify(qt, oids[q.Symbol], map[string]datum.Value{
			"price": datum.Float(q.Price)}); err != nil {
			return err
		}
		if err := qt.Commit(); err != nil {
			return err
		}
		if i%256 == 255 {
			e.Quiesce()
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.Quiesce()
	row("quotes processed", n)
	row("display requests", displayed.Load())
	row("per quote", per)
	row("quotes/sec", int(float64(time.Second)/float64(per)))
	tailRow(e, "txn_commit", "op")
	return nil
}

// --- C1 ---

func expC1(quick bool) error {
	row("E-C/C-A", "per triggering update")
	n := iters(quick, 2000)
	for _, ec := range []string{"immediate", "deferred", "separate"} {
		for _, ca := range []string{"immediate", "deferred", "separate"} {
			e, err := newBase()
			if err != nil {
				return err
			}
			oids, err := workload.SeedStocks(e, 1)
			if err != nil {
				return err
			}
			if _, err := e.CreateRule(workload.AuditRuleDef("audit", ec, ca)); err != nil {
				return err
			}
			per, err := measure(n, func(i int) error {
				return workload.UpdateOne(e, oids[0], float64(i))
			})
			if err != nil {
				return err
			}
			e.Quiesce()
			row(ec+"/"+ca, per)
			e.Close()
		}
	}
	return nil
}

// --- C2 ---

func expC2(quick bool) error {
	row("siblings", "concurrent", "serial-baseline")
	const work = 200_000
	n := iters(quick, 50)
	for _, sib := range []int{1, 2, 4, 8, 16, 32} {
		// Concurrent: sib rules fire as siblings.
		e, err := newBase()
		if err != nil {
			return err
		}
		oids, _ := workload.SeedStocks(e, 1)
		var sink atomic.Int64
		e.RegisterCall("work", func(*txn.Txn, map[string]datum.Value) error {
			sink.Add(workload.Spin(work))
			return nil
		})
		for _, def := range workload.CallRuleDefs(sib, "work") {
			if _, err := e.CreateRule(def); err != nil {
				return err
			}
		}
		conc, err := measure(n, func(i int) error {
			return workload.UpdateOne(e, oids[0], float64(i))
		})
		if err != nil {
			return err
		}
		e.Close()

		// Serial baseline: one rule does sib x work.
		e2, err := newBase()
		if err != nil {
			return err
		}
		oids2, _ := workload.SeedStocks(e2, 1)
		sibCopy := sib
		e2.RegisterCall("workN", func(*txn.Txn, map[string]datum.Value) error {
			for k := 0; k < sibCopy; k++ {
				sink.Add(workload.Spin(work))
			}
			return nil
		})
		if _, err := e2.CreateRule(rule.Def{
			Name:   "serial",
			Event:  "modify(Stock)",
			Action: []rule.Step{{Kind: rule.StepCall, Fn: "workN"}},
			EC:     "immediate", CA: "immediate",
		}); err != nil {
			return err
		}
		serial, err := measure(n, func(i int) error {
			return workload.UpdateOne(e2, oids2[0], float64(i))
		})
		if err != nil {
			return err
		}
		e2.Close()
		row(fmt.Sprint(sib), conc, serial)
	}
	return nil
}

// --- C3 ---

func expC3(quick bool) error {
	row("depth", "per trigger", "per level")
	n := iters(quick, 500)
	for _, depth := range []int{1, 2, 4, 8} {
		e, err := newBase()
		if err != nil {
			return err
		}
		first, err := workload.CascadeChain(e, depth)
		if err != nil {
			return err
		}
		per, err := measure(n, func(i int) error {
			tx := e.Begin()
			if _, err := e.Create(tx, first, map[string]datum.Value{"x": datum.Int(0)}); err != nil {
				return err
			}
			return tx.Commit()
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(depth), per, per/time.Duration(depth))
		e.Close()
	}
	return nil
}

// --- C4 ---

func expC4(quick bool) error {
	row("rules x overlap", "per update")
	n := iters(quick, 100)
	for _, rules := range []int{10, 100, 1000} {
		// Ablation: sweep the fraction of rules sharing one condition
		// node, from fully distinct (the naive baseline) to fully
		// shared.
		for _, overlap := range []float64{0.0, 0.5, 0.9, 1.0} {
			e, err := newBase()
			if err != nil {
				return err
			}
			oids, err := workload.SeedStocks(e, 200)
			if err != nil {
				return err
			}
			for _, def := range workload.SharedConditionRules(rules, overlap) {
				if _, err := e.CreateRule(def); err != nil {
					return err
				}
			}
			per, err := measure(n, func(i int) error {
				return workload.UpdateOne(e, oids[i%200], float64(i))
			})
			if err != nil {
				return err
			}
			row(fmt.Sprintf("%d @ %.0f%%", rules, overlap*100), per)
			e.Close()
		}
	}
	return nil
}

// --- C5 ---

func expC5(quick bool) error {
	row("configuration", "per update", "vs passive")
	n := iters(quick, 3000)
	var passive time.Duration
	for _, cfg := range []string{"passive (0 rules)", "100 non-matching rules", "100 disabled rules"} {
		e, err := newBase()
		if err != nil {
			return err
		}
		oids, err := workload.SeedStocks(e, 100)
		if err != nil {
			return err
		}
		switch cfg {
		case "100 non-matching rules":
			if err := workload.NonMatchingRules(e, 100); err != nil {
				return err
			}
		case "100 disabled rules":
			if err := workload.DisabledRules(e, 100); err != nil {
				return err
			}
		}
		per, err := measure(n, func(i int) error {
			return workload.UpdateOne(e, oids[i%100], float64(i))
		})
		if err != nil {
			return err
		}
		if passive == 0 {
			passive = per
		}
		row(cfg, per, fmt.Sprintf("%.2fx", float64(per)/float64(passive)))
		e.Close()
	}
	return nil
}

// --- C6 ---

func expC6(quick bool) error {
	row("operator", "per signal")
	n := iters(quick, 5000)
	for _, shape := range []struct{ name, spec string }{
		{"primitive", "external(A)"},
		{"or", "or(external(A), external(B))"},
		{"seq", "seq(external(A), external(B))"},
		{"and", "and(external(A), external(B))"},
	} {
		e, err := newBase()
		if err != nil {
			return err
		}
		if err := e.DefineEvent("A"); err != nil {
			return err
		}
		if err := e.DefineEvent("B"); err != nil {
			return err
		}
		if _, err := e.CreateRule(rule.Def{
			Name:   "composite",
			Event:  shape.spec,
			Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
			EC:     "immediate", CA: "immediate",
		}); err != nil {
			return err
		}
		tx := e.Begin()
		per, err := measure(n, func(i int) error {
			name := "A"
			if i%2 == 1 {
				name = "B"
			}
			return e.SignalEvent(tx, name, nil)
		})
		if err != nil {
			return err
		}
		tx.Commit()
		row(shape.name, per)
		e.Close()
	}
	return nil
}

// --- C7 ---

func expC7(quick bool) error {
	row("deferred firings", "commit latency")
	n := iters(quick, 100)
	for _, d := range []int{0, 1, 8, 64, 256, 1024} {
		e, err := newBase()
		if err != nil {
			return err
		}
		oids, err := workload.SeedStocks(e, 1)
		if err != nil {
			return err
		}
		if d > 0 {
			if _, err := e.CreateRule(workload.AuditRuleDef("audit", "deferred", "immediate")); err != nil {
				return err
			}
		}
		per, err := measure(n, func(i int) error {
			tx := e.Begin()
			updates := d
			if updates == 0 {
				updates = 1
			}
			for k := 0; k < updates; k++ {
				if err := e.Modify(tx, oids[0], map[string]datum.Value{
					"price": datum.Float(float64(k))}); err != nil {
					return err
				}
			}
			start := time.Now()
			if err := tx.Commit(); err != nil {
				return err
			}
			_ = start
			return nil
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(d), per)
		tailRow(e, "txn_commit")
		e.Close()
	}
	return nil
}

// --- C8 ---

func expC8(quick bool) error {
	row("nesting depth", "per txn")
	n := iters(quick, 2000)
	for _, depth := range []int{0, 1, 2, 4, 8} {
		e, err := newBase()
		if err != nil {
			return err
		}
		oids, err := workload.SeedStocks(e, 1)
		if err != nil {
			return err
		}
		per, err := measure(n, func(i int) error {
			top := e.Begin()
			cur := top
			chain := make([]*txn.Txn, 0, depth)
			for d := 0; d < depth; d++ {
				c, err := cur.Child()
				if err != nil {
					return err
				}
				chain = append(chain, c)
				cur = c
			}
			if err := e.Modify(cur, oids[0], map[string]datum.Value{
				"price": datum.Float(float64(i))}); err != nil {
				return err
			}
			for j := len(chain) - 1; j >= 0; j-- {
				if err := chain[j].Commit(); err != nil {
					return err
				}
			}
			return top.Commit()
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(depth), per)
		e.Close()
	}
	return nil
}

// --- C9 ---

func expC9(quick bool) error {
	row("rules on event", "per update")
	n := iters(quick, 500)
	for _, rules := range []int{1, 16, 64, 256} {
		e, err := newBase()
		if err != nil {
			return err
		}
		oids, err := workload.SeedStocks(e, 1)
		if err != nil {
			return err
		}
		for _, def := range workload.CallRuleDefs(rules, "noop") {
			if _, err := e.CreateRule(def); err != nil {
				return err
			}
		}
		per, err := measure(n, func(i int) error {
			return workload.UpdateOne(e, oids[0], float64(i))
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(rules), per)
		e.Close()
	}
	return nil
}

// --- C10 ---

func expC10(quick bool) error {
	row("disabled rules", "per update")
	n := iters(quick, 3000)
	for _, d := range []int{0, 10, 100, 1000} {
		e, err := newBase()
		if err != nil {
			return err
		}
		oids, err := workload.SeedStocks(e, 1)
		if err != nil {
			return err
		}
		if err := workload.DisabledRules(e, d); err != nil {
			return err
		}
		per, err := measure(n, func(i int) error {
			return workload.UpdateOne(e, oids[0], float64(i))
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(d), per)
		e.Close()
	}
	return nil
}

// --- C11 ---

func expC11(quick bool) error {
	row("periodic rules", "per virtual second")
	n := iters(quick, 200)
	for _, k := range []int{1, 16, 128} {
		e, clk := workload.MustEngine()
		if err := workload.DefineBase(e); err != nil {
			return err
		}
		e.RegisterCall("noop", func(*txn.Txn, map[string]datum.Value) error { return nil })
		for i := 0; i < k; i++ {
			if _, err := e.CreateRule(rule.Def{
				Name:   fmt.Sprintf("tick-%03d", i),
				Event:  "every(1s)",
				Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
				EC:     "immediate", CA: "immediate",
			}); err != nil {
				return err
			}
		}
		per, err := measure(n, func(int) error {
			clk.Advance(time.Second)
			e.Quiesce()
			return nil
		})
		if err != nil {
			return err
		}
		row(fmt.Sprint(k), per)
		e.Close()
	}
	return nil
}

// --- C12 ---

func expC12(quick bool) error {
	row("path", "per signal")
	n := iters(quick, 3000)

	// In-process.
	e, err := newBase()
	if err != nil {
		return err
	}
	if err := e.DefineEvent("Ping", "n"); err != nil {
		return err
	}
	if _, err := e.CreateRule(rule.Def{
		Name:   "on-ping",
		Event:  "external(Ping)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
		EC:     "immediate", CA: "immediate",
	}); err != nil {
		return err
	}
	tx := e.Begin()
	inproc, err := measure(n, func(i int) error {
		return e.SignalEvent(tx, "Ping", map[string]datum.Value{"n": datum.Int(int64(i))})
	})
	if err != nil {
		return err
	}
	tx.Commit()
	row("in-process", inproc)
	e.Close()

	// Over IPC.
	e2, err := newBase()
	if err != nil {
		return err
	}
	defer e2.Close()
	srv := server.New(e2)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.DefineEvent("Ping", "n"); err != nil {
		return err
	}
	if err := c.CreateRule(rule.Def{
		Name:   "on-ping",
		Event:  "external(Ping)",
		Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
		EC:     "immediate", CA: "immediate",
	}); err != nil {
		return err
	}
	ctx, err := c.Begin()
	if err != nil {
		return err
	}
	ipcPer, err := measure(n, func(i int) error {
		return c.SignalEvent(ctx, "Ping", map[string]datum.Value{"n": datum.Int(int64(i))})
	})
	if err != nil {
		return err
	}
	ctx.Commit()
	row("over IPC (TCP loopback)", ipcPer)
	return nil
}

// --- C13 ---

// expC13 measures durable (fsync) commit throughput as committer
// concurrency grows. With group commit, concurrent committers share
// WAL flushes, so fsyncs/commit drops below 1.0 and per-commit cost
// falls even though every commit is individually durable.
func expC13(quick bool) error {
	row("committers", "per commit", "commits/sec", "fsyncs/commit")
	n := iters(quick, 2000)
	for _, g := range []int{1, 2, 4, 8, 16} {
		dir, err := os.MkdirTemp("", "hipac-bench-c13-")
		if err != nil {
			return err
		}
		e, err := core.Open(core.Options{Dir: dir, Clock: clock.NewVirtual(workload.Epoch)})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		runOne := func() error {
			if err := workload.DefineBase(e); err != nil {
				return err
			}
			oids, err := workload.SeedStocks(e, g)
			if err != nil {
				return err
			}
			// Warm the commit path before counting.
			for i := 0; i < 20; i++ {
				if err := workload.UpdateOne(e, oids[0], float64(i)); err != nil {
					return err
				}
			}
			base := e.Stats().Store
			perG := n / g
			if perG == 0 {
				perG = 1
			}
			errs := make(chan error, g)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(oid datum.OID) {
					defer wg.Done()
					for k := 0; k < perG; k++ {
						if err := workload.UpdateOne(e, oid, float64(k)); err != nil {
							errs <- err
							return
						}
					}
				}(oids[w])
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			for err := range errs {
				return err
			}
			st := e.Stats().Store
			commits := st.TopCommits - base.TopCommits
			fsyncs := st.WALFsyncs - base.WALFsyncs
			row(fmt.Sprint(g), elapsed/time.Duration(commits),
				int(float64(commits)/elapsed.Seconds()),
				fmt.Sprintf("%.3f", float64(fsyncs)/float64(commits)))
			tailRow(e, "commit_stall", "wal_sync", "wal_group_size")
			return nil
		}
		err = runOne()
		e.Close()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
	}
	return nil
}

// --- C14 ---

// expC14 measures commit latency while a fuzzy checkpointer runs.
// Checkpointing is non-quiescent — the snapshot is cut under a read
// lock and the WAL truncated while commits proceed — so reclaiming
// log space should show up as WAL bytes reclaimed, not as a
// commit-latency cliff: the bar is commit p99 within 2x of the
// checkpointer-off baseline.
func expC14(quick bool) error {
	row("checkpointer", "per commit", "commits/sec", "checkpoints", "wal reclaimed")
	n := iters(quick, 2000)
	const g = 8
	for _, interval := range []time.Duration{0, 25 * time.Millisecond, 5 * time.Millisecond} {
		dir, err := os.MkdirTemp("", "hipac-bench-c14-")
		if err != nil {
			return err
		}
		e, err := core.Open(core.Options{Dir: dir, Clock: clock.NewVirtual(workload.Epoch),
			CheckpointInterval: interval})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		runOne := func() error {
			if err := workload.DefineBase(e); err != nil {
				return err
			}
			oids, err := workload.SeedStocks(e, g)
			if err != nil {
				return err
			}
			// Warm the commit path before counting.
			for i := 0; i < 20; i++ {
				if err := workload.UpdateOne(e, oids[0], float64(i)); err != nil {
					return err
				}
			}
			base := e.Stats().Store
			perG := n / g
			if perG == 0 {
				perG = 1
			}
			errs := make(chan error, g)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(oid datum.OID) {
					defer wg.Done()
					for k := 0; k < perG; k++ {
						if err := workload.UpdateOne(e, oid, float64(k)); err != nil {
							errs <- err
							return
						}
					}
				}(oids[w])
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			for err := range errs {
				return err
			}
			st := e.Stats().Store
			commits := st.TopCommits - base.TopCommits
			label := "off"
			if interval > 0 {
				label = "every " + interval.String()
			}
			row(label, elapsed/time.Duration(commits),
				int(float64(commits)/elapsed.Seconds()),
				st.Checkpoints-base.Checkpoints,
				st.WALBytesReclaimed-base.WALBytesReclaimed)
			tailRow(e, "commit_stall", "checkpoint", "wal_bytes_reclaimed")
			return nil
		}
		err = runOne()
		e.Close()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
	}
	return nil
}

// expC15: commit p99 while WAL growth drives background delta
// checkpoints. The size trigger fires off the commit path (the group
// flush only kicks a goroutine), so tightening the byte budget should
// raise checkpoint frequency — visible in the full/delta counts and
// delta_records — without moving the commit tail.
func expC15(quick bool) error {
	row("trigger", "per commit", "commits/sec", "full/delta", "wal reclaimed")
	n := iters(quick, 8000)
	const g = 8
	for _, after := range []uint64{0, 64 << 10, 16 << 10} {
		dir, err := os.MkdirTemp("", "hipac-bench-c15-")
		if err != nil {
			return err
		}
		e, err := core.Open(core.Options{Dir: dir, Clock: clock.NewVirtual(workload.Epoch),
			CheckpointAfterBytes: after})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		runOne := func() error {
			if err := workload.DefineBase(e); err != nil {
				return err
			}
			oids, err := workload.SeedStocks(e, g)
			if err != nil {
				return err
			}
			for i := 0; i < 20; i++ {
				if err := workload.UpdateOne(e, oids[0], float64(i)); err != nil {
					return err
				}
			}
			base := e.Stats().Store
			perG := n / g
			if perG == 0 {
				perG = 1
			}
			errs := make(chan error, g)
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(oid datum.OID) {
					defer wg.Done()
					for k := 0; k < perG; k++ {
						if err := workload.UpdateOne(e, oid, float64(k)); err != nil {
							errs <- err
							return
						}
					}
				}(oids[w])
			}
			wg.Wait()
			elapsed := time.Since(start)
			close(errs)
			for err := range errs {
				return err
			}
			// Let an in-flight background checkpoint finish before
			// reading counters: the trigger only kicks a goroutine.
			for prev := ^uint64(0); ; {
				cur := e.Stats().Store.Checkpoints
				if cur == prev {
					break
				}
				prev = cur
				time.Sleep(80 * time.Millisecond)
			}
			st := e.Stats().Store
			commits := st.TopCommits - base.TopCommits
			label := "off"
			if after > 0 {
				label = fmt.Sprintf("after %dKiB", after>>10)
			}
			row(label, elapsed/time.Duration(commits),
				int(float64(commits)/elapsed.Seconds()),
				fmt.Sprintf("%d/%d", st.FullCheckpoints-base.FullCheckpoints,
					st.DeltaCheckpoints-base.DeltaCheckpoints),
				st.WALBytesReclaimed-base.WALBytesReclaimed)
			tailRow(e, "commit_stall", "checkpoint", "delta_records")
			return nil
		}
		err = runOne()
		if errs := e.AsyncErrors(); err == nil && len(errs) > 0 {
			err = errs[0]
		}
		e.Close()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
	}
	return nil
}
