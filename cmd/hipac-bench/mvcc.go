// C18 — the MVCC read-path experiment: long snapshot scans racing
// committers. Readers run full-class queries (each pins a snapshot
// for its whole scan) while 8 writers commit point updates into the
// same class. Under the pre-MVCC reader/writer locking this workload
// convoyed: a scan's shared locks stalled every committer touching
// the same shards. With version chains the two sides only meet at the
// atomic chain heads, so the signal is reader scan throughput,
// committer throughput, and commit p99 — all measured together.
package main

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/workload"
)

const (
	c18Committers = 8
	c18Readers    = 2
	c18Objects    = 4096
)

// expC18 runs the snapshot-scan-vs-committer race and records
// ns-per-scan (reader side), ns-per-commit (writer side), and the
// commit p99.
func expC18(quick bool) error {
	dur := 400 * time.Millisecond
	reps := 3
	if quick {
		dur = 120 * time.Millisecond
		reps = 2
	}
	var bestScan, bestCommit, bestP99 float64
	for r := 0; r < reps; r++ {
		scanNs, commitNs, p99, err := runC18(dur)
		if err != nil {
			return err
		}
		if bestScan == 0 || scanNs < bestScan {
			bestScan = scanNs
		}
		if bestCommit == 0 || commitNs < bestCommit {
			bestCommit = commitNs
		}
		if bestP99 == 0 || p99 < bestP99 {
			bestP99 = p99
		}
	}
	recordMetric("C18/snapscan/scan", bestScan)
	recordMetric("C18/snapscan/commit", bestCommit)
	recordMetric("C18/snapscan/commit-p99", bestP99)
	row("metric", "value")
	row("scan (full class)", time.Duration(bestScan).Round(time.Nanosecond))
	row("commit", time.Duration(bestCommit).Round(time.Nanosecond))
	row("commit p99", time.Duration(bestP99).Round(time.Nanosecond))
	return nil
}

// runC18 races c18Readers full-class scanners against c18Committers
// point committers for dur and returns (ns/scan, ns/commit, commit
// p99 ns).
func runC18(dur time.Duration) (scanNs, commitNs, p99 float64, err error) {
	e, _ := workload.MustEngine()
	defer e.Close()
	if err = workload.DefineBase(e); err != nil {
		return
	}
	oids, err := workload.SeedStocks(e, c18Objects)
	if err != nil {
		return
	}

	var stop atomic.Bool
	var scans, commits atomic.Int64
	latencies := make([][]int64, c18Committers)
	errs := make(chan error, c18Readers+c18Committers)
	var wg sync.WaitGroup

	for w := 0; w < c18Readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				tx := e.Begin()
				res, qerr := e.Query(tx, "select count(*) as n from Stock s", nil)
				if qerr != nil {
					errs <- qerr
					tx.Abort()
					return
				}
				tx.Commit()
				if got := res.Rows[0][0].AsInt(); got != c18Objects {
					errs <- fmt.Errorf("scan saw %d rows, want %d", got, c18Objects)
					return
				}
				scans.Add(1)
			}
		}()
	}
	for w := 0; w < c18Committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			oid := oids[w]
			i := 0
			for !stop.Load() {
				i++
				t0 := time.Now()
				tx := e.Begin()
				if merr := e.Modify(tx, oid, map[string]datum.Value{
					"price": datum.Float(float64(i))}); merr != nil {
					errs <- merr
					tx.Abort()
					return
				}
				if cerr := tx.Commit(); cerr != nil {
					errs <- cerr
					return
				}
				latencies[w] = append(latencies[w], time.Since(t0).Nanoseconds())
				commits.Add(1)
			}
		}(w)
	}

	start := time.Now()
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	defer timer.Stop()
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for e := range errs {
		return 0, 0, 0, e
	}
	if scans.Load() == 0 || commits.Load() == 0 {
		return 0, 0, 0, fmt.Errorf("starved side: %d scans, %d commits in %v",
			scans.Load(), commits.Load(), dur)
	}
	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 = float64(all[len(all)*99/100])
	scanNs = float64(elapsed.Nanoseconds()) / float64(scans.Load())
	commitNs = float64(elapsed.Nanoseconds()) / float64(commits.Load())
	return scanNs, commitNs, p99, nil
}
