// C17: composite-event runtime throughput. Eight workers signal an
// external PriceDrop event round-robin over a set of tickers; every
// signal advances the aggregate template `count(PriceDrop where
// ticker=$t) >= K within 1m` of each defined rule, so per-signal cost
// scales with rule fan-out while the live NFA-instance population
// scales with the ticker count. The cells feed the BENCH_6.json
// baseline alongside C16's.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/rule"
	"repro/internal/txn"
	"repro/internal/workload"
)

// smokeCEP returns the C17 parallel workload for one (tickers,
// fanout) cell. Each rule uses a distinct aggregate threshold so it
// gets its own detector subscription and template — fan-out multiplies
// the NFA work per signal, not just the rule dispatch. Thresholds
// start at 50 so firings (and their separate-coupling action
// goroutines) happen continuously but don't dominate the signal path.
func smokeCEP(tickers, fanout int) func(procs int, dur time.Duration) (float64, error) {
	return func(procs int, dur time.Duration) (float64, error) {
		e, _ := workload.MustEngine()
		defer e.Close()
		e.RegisterCall("noop", func(*txn.Txn, map[string]datum.Value) error { return nil })
		if err := e.DefineEvent("PriceDrop", "ticker", "price"); err != nil {
			return 0, err
		}
		for i := 0; i < fanout; i++ {
			def := rule.Def{
				Name:   fmt.Sprintf("agg-%03d", i),
				Event:  fmt.Sprintf("count(PriceDrop where ticker=$t) >= %d within 1m", 50+i),
				Action: []rule.Step{{Kind: rule.StepCall, Fn: "noop"}},
				EC:     "immediate", CA: "immediate",
			}
			if _, err := e.CreateRule(def); err != nil {
				return 0, err
			}
		}
		names := make([]datum.Value, tickers)
		for i := range names {
			names[i] = datum.Str(fmt.Sprintf("T%05d", i))
		}
		ns, err := runParallel(procs, dur, func(w int, stop *atomic.Bool) (int, error) {
			i := 0
			for !stop.Load() {
				i++
				args := map[string]datum.Value{
					"ticker": names[(i*7+w*1031)%tickers],
					"price":  datum.Float(float64(i)),
				}
				if err := e.SignalEvent(nil, "PriceDrop", args); err != nil {
					return i, err
				}
			}
			return i, nil
		})
		e.Quiesce()
		return ns, err
	}
}

// expC17 sweeps active-instance count (tickers) against rule fan-out
// at 8 procs, best of the timed reps per cell. ns/signal should grow
// roughly linearly with fan-out (each signal advances every template)
// and stay near-flat in the ticker count (instances hash to
// independent shards; only the map grows).
func expC17(quick bool) error {
	dur := 250 * time.Millisecond
	reps := 3
	if quick {
		dur = 80 * time.Millisecond
		reps = 2
	}
	tickerCounts := []int{16, 256, 4096}
	fanouts := []int{1, 16}
	row("tickers", "f1 ns/signal", "f16 ns/signal", "f16/f1")
	for _, tc := range tickerCounts {
		best := map[int]float64{}
		for _, f := range fanouts {
			for r := 0; r < reps; r++ {
				ns, err := smokeCEP(tc, f)(8, dur)
				if err != nil {
					return fmt.Errorf("t%d/f%d: %w", tc, f, err)
				}
				if best[f] == 0 || ns < best[f] {
					best[f] = ns
				}
			}
			recordMetric(fmt.Sprintf("C17/t%d/f%d", tc, f), best[f])
		}
		row(fmt.Sprintf("%d", tc),
			time.Duration(best[1]).Round(time.Nanosecond),
			time.Duration(best[16]).Round(time.Nanosecond),
			fmt.Sprintf("%.2f", best[16]/best[1]))
	}
	return nil
}
