// C20 — query processing: a join-heavy rule condition over a
// 1M-holding SAA portfolio, evaluated through the cost-based planner
// (the engine default) and through the tree-walk interpreter. The
// condition joins Holding against Stock for one account; only
// Holding.owner and Stock.symbol are indexed, so the tree-walk's
// syntactic order extent-scans every Stock and probes the owner index
// per stock, while the planner reorders to the selective owner probe
// first and parameterized symbol probes inside. The two cells must
// return identical rows; the planner cell is the regression-gated
// fast path.
package main

import (
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/saa"
	"repro/internal/workload"
)

const (
	c20Stocks   = 2000
	c20Owners   = 5000
	c20Holdings = 1_000_000
	c20Batch    = 25_000

	c20Query = "select s, h from Stock s, Holding h " +
		"where s.symbol = h.symbol and h.owner = event.owner"
)

func expC20(quick bool) error {
	holdings := c20Holdings
	planIters, walkIters, reps := 100, 3, 4
	if quick {
		holdings = 150_000
		planIters, walkIters, reps = 30, 2, 2
	}

	e, _ := workload.MustEngine()
	defer e.Close()
	tx := e.Begin()
	for _, cls := range saa.Classes() {
		if err := e.DefineClass(tx, cls); err != nil {
			return err
		}
	}
	symbols := make([]string, c20Stocks)
	for i := range symbols {
		symbols[i] = fmt.Sprintf("S%05d", i)
		if _, err := e.Create(tx, saa.ClassStock, map[string]datum.Value{
			"symbol": datum.Str(symbols[i]),
			"price":  datum.Float(float64(10 + i%90)),
		}); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	// Holdings land in batched transactions so the seed phase doesn't
	// build one enormous write set.
	for base := 0; base < holdings; base += c20Batch {
		bt := e.Begin()
		end := base + c20Batch
		if end > holdings {
			end = holdings
		}
		for i := base; i < end; i++ {
			if _, err := e.Create(bt, saa.ClassHolding, map[string]datum.Value{
				"owner":  datum.Str(fmt.Sprintf("acct%04d", i%c20Owners)),
				"symbol": datum.Str(symbols[i%c20Stocks]),
				"qty":    datum.Int(int64(1 + i%100)),
			}); err != nil {
				return err
			}
		}
		if err := bt.Commit(); err != nil {
			return err
		}
	}

	q := query.MustParse(c20Query)
	args := map[string]datum.Value{"owner": datum.Str("acct2500")}
	wantRows := holdings / c20Owners

	eval := func(planner bool) (*query.Result, string, error) {
		rtx := e.Begin()
		sr := e.Objects.SnapshotReader(rtx)
		defer func() { sr.Close(); rtx.Commit() }()
		if planner {
			p := plan.Build(q, sr, args, plan.Options{})
			res, err := p.Execute(sr, args)
			return res, p.Explain(), err
		}
		res, err := query.Eval(q, sr, args)
		return res, "", err
	}

	// Correctness gate before timing: both cells agree, the planner
	// actually picks the owner-index path, and the row count matches
	// the seeded per-account cardinality.
	pres, explain, err := eval(true)
	if err != nil {
		return err
	}
	wres, _, err := eval(false)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(wres, pres) {
		return fmt.Errorf("planner and tree-walk disagree: %d vs %d rows",
			len(pres.Rows), len(wres.Rows))
	}
	if len(pres.Rows) != wantRows {
		return fmt.Errorf("join returned %d rows, want %d", len(pres.Rows), wantRows)
	}
	if !strings.Contains(explain, "index scan") || !strings.Contains(explain, "Holding") {
		return fmt.Errorf("planner did not choose the Holding index path:\n%s", explain)
	}

	// The seeded heap holds ~1M live objects, so GC pauses dwarf a
	// single planner evaluation; best-of-reps with a collection before
	// each rep (and a relaxed GC target while measuring) keeps the
	// cells stable enough for the 20% regression gate.
	oldGC := debug.SetGCPercent(400)
	defer debug.SetGCPercent(oldGC)
	var perPlan, perWalk time.Duration
	for r := 0; r < reps; r++ {
		runtime.GC()
		p, err := measure(planIters, func(int) error {
			_, _, err := eval(true)
			return err
		})
		if err != nil {
			return err
		}
		w, err := measure(walkIters, func(int) error {
			_, _, err := eval(false)
			return err
		})
		if err != nil {
			return err
		}
		if perPlan == 0 || p < perPlan {
			perPlan = p
		}
		if perWalk == 0 || w < perWalk {
			perWalk = w
		}
	}

	speedup := float64(perWalk) / float64(perPlan)
	recordMetric("C20/planjoin/planner", float64(perPlan))
	recordMetric("C20/planjoin/treewalk", float64(perWalk))
	row("cell", "per evaluation")
	row("planner (index join)", perPlan.Round(time.Microsecond))
	row("tree-walk (extent join)", perWalk.Round(time.Microsecond))
	row("speedup", fmt.Sprintf("%.0fx", speedup))
	row("holdings / rows per eval", fmt.Sprintf("%d / %d", holdings, wantRows))
	if speedup < 5 {
		return fmt.Errorf("planner speedup %.1fx below the 5x bar", speedup)
	}
	return nil
}
