// C19 — the replication experiment: replica read throughput and
// replication lag while the primary commits at full rate. A durable
// primary ships its WAL to one replica over TCP; point committers
// drive the primary while readers hammer the replica's MVCC read path
// at its applied frontier. The signal is ns per replica read, ns per
// primary commit, the primary commit p99 (shipping must not tax the
// commit path — this cell is in the regression gate), and the p99 of
// the batch send→apply lag sampled over the run.
package main

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datum"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/storage"
	"repro/internal/txn"
)

const (
	c19Committers = 4
	c19Readers    = 4
	c19Objects    = 2048
)

// expC19 runs the primary-commit-vs-replica-read race and records
// ns-per-replica-read, ns-per-commit, commit p99, and lag p99.
func expC19(quick bool) error {
	dur := 400 * time.Millisecond
	reps := 3
	if quick {
		dur = 120 * time.Millisecond
		reps = 2
	}
	var bestRead, bestCommit, bestP99, bestLag float64
	for r := 0; r < reps; r++ {
		readNs, commitNs, p99, lagP99, err := runC19(dur)
		if err != nil {
			return err
		}
		if bestRead == 0 || readNs < bestRead {
			bestRead = readNs
		}
		if bestCommit == 0 || commitNs < bestCommit {
			bestCommit = commitNs
		}
		if bestP99 == 0 || p99 < bestP99 {
			bestP99 = p99
		}
		if bestLag == 0 || lagP99 < bestLag {
			bestLag = lagP99
		}
	}
	recordMetric("C19/repl/read", bestRead)
	recordMetric("C19/repl/commit", bestCommit)
	recordMetric("C19/repl/commit-p99", bestP99)
	// Lag p99 is reported but not recorded: it swings by an order of
	// magnitude with scheduler luck (the replica applies serially, so
	// one stall compounds), which would make the ±20% gate flap.
	row("metric", "value")
	row("replica read", time.Duration(bestRead).Round(time.Nanosecond))
	row("primary commit", time.Duration(bestCommit).Round(time.Nanosecond))
	row("primary commit p99", time.Duration(bestP99).Round(time.Nanosecond))
	row("replication lag p99", time.Duration(bestLag).Round(time.Nanosecond))
	return nil
}

// runC19 races c19Readers replica point-readers against
// c19Committers primary committers for dur over a live WAL-shipping
// pair and returns (ns/read, ns/commit, commit p99 ns, lag p99 ns).
func runC19(dur time.Duration) (readNs, commitNs, p99, lagP99 float64, err error) {
	pdir, err := os.MkdirTemp("", "hipac-c19-primary")
	if err != nil {
		return
	}
	defer os.RemoveAll(pdir)
	rdir, err := os.MkdirTemp("", "hipac-c19-replica")
	if err != nil {
		return
	}
	defer os.RemoveAll(rdir)

	txns, _ := txn.NewSystem()
	store, err := storage.Open(txns, storage.Options{Dir: pdir, NoSync: true})
	if err != nil {
		return
	}
	defer store.Close()
	txns.Register(store)
	prim := repl.NewPrimary(store, obs.New(obs.Options{}).Metrics())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return
	}
	go prim.Serve(ln)
	defer prim.Close()
	rep, err := repl.Open(repl.Options{Dir: rdir, PrimaryAddr: ln.Addr().String(), NoSync: true})
	if err != nil {
		return
	}
	defer rep.Close()

	// Seed the working set in modest batches, then let the replica
	// reach the frontier before the measured phase starts.
	for base := 0; base < c19Objects; base += 256 {
		tx := txns.Begin()
		for i := base; i < base+256 && i < c19Objects; i++ {
			store.Put(tx.ID(), storage.Record{OID: datum.OID(i + 1), Class: "S",
				Attrs: map[string]datum.Value{"v": datum.Int(0)}})
		}
		if err = tx.Commit(); err != nil {
			return
		}
	}
	if !rep.WaitApplied(store.WAL().End(), 10*time.Second) {
		err = fmt.Errorf("replica never caught up to the seed: %+v", rep.Status())
		return
	}

	var stop atomic.Bool
	var reads, commits atomic.Int64
	latencies := make([][]int64, c19Committers)
	var lagSamples []int64
	errs := make(chan error, c19Readers+c19Committers+1)
	var wg sync.WaitGroup

	for w := 0; w < c19Readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for !stop.Load() {
				i++
				oid := datum.OID(i%c19Objects + 1)
				if _, gerr := rep.Get(oid); gerr != nil {
					errs <- gerr
					return
				}
				reads.Add(1)
			}
		}(w)
	}
	for w := 0; w < c19Committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			oid := datum.OID(w + 1)
			i := 0
			for !stop.Load() {
				i++
				t0 := time.Now()
				tx := txns.Begin()
				store.Put(tx.ID(), storage.Record{OID: oid, Class: "S",
					Attrs: map[string]datum.Value{"v": datum.Int(int64(i))}})
				if cerr := tx.Commit(); cerr != nil {
					errs <- cerr
					return
				}
				latencies[w] = append(latencies[w], time.Since(t0).Nanoseconds())
				commits.Add(1)
			}
		}(w)
	}
	// Lag sampler: the replica's last batch send→apply latency, time
	// sampled so slow periods weigh in proportion to their duration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for !stop.Load() {
			<-tick.C
			if lag := rep.Status().LagNanos; lag > 0 {
				lagSamples = append(lagSamples, lag)
			}
		}
	}()

	start := time.Now()
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	defer timer.Stop()
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for e := range errs {
		return 0, 0, 0, 0, e
	}
	if reads.Load() == 0 || commits.Load() == 0 {
		err = fmt.Errorf("starved side: %d reads, %d commits in %v", reads.Load(), commits.Load(), dur)
		return
	}
	// Correctness anchor: the replica must converge to the final
	// frontier once commits stop.
	if !rep.WaitApplied(store.WAL().End(), 10*time.Second) {
		err = fmt.Errorf("replica never converged after the run: %+v", rep.Status())
		return
	}

	var all []int64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 = float64(all[len(all)*99/100])
	sort.Slice(lagSamples, func(i, j int) bool { return lagSamples[i] < lagSamples[j] })
	if len(lagSamples) > 0 {
		lagP99 = float64(lagSamples[len(lagSamples)*99/100])
	}
	readNs = float64(elapsed.Nanoseconds()) / float64(reads.Load())
	commitNs = float64(elapsed.Nanoseconds()) / float64(commits.Load())
	return readNs, commitNs, p99, lagP99, nil
}
