// C21 — parallel query execution: an unselective extent scan, a
// 3-way hash join (Holding x Stock x Sector), and a full-extent
// aggregate, each evaluated at plan parallelism 1, 2, and 8. Every
// parallel cell is DeepEqual-gated against the serial plan and the
// tree-walk oracle before timing — the executor's contract is that
// parallelism never changes the answer, only the wall clock. The
// speedup bar (parallel-8 at least 2x serial on the scan and join)
// only applies on hosts with 4+ CPUs; on smaller hosts the parallel
// cells measure goroutine oversubscription, so the experiment reports
// the ratios and gates on correctness alone.
package main

import (
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/workload"
)

const (
	c21Stocks   = 512
	c21Sectors  = 16
	c21Holdings = 100_000
	c21Batch    = 25_000
)

// c21Classes: Holding.symbol and Stock.sector are deliberately
// unindexed so the scan cell has no index escape hatch and the joins
// go through the partitioned hash path.
func c21Classes() []object.Class {
	return []object.Class{
		{Name: "Stock", Attrs: []object.AttrDef{
			{Name: "symbol", Kind: datum.KindString, Required: true, Indexed: true},
			{Name: "sector", Kind: datum.KindString, Required: true},
			{Name: "price", Kind: datum.KindFloat},
		}},
		{Name: "Holding", Attrs: []object.AttrDef{
			{Name: "owner", Kind: datum.KindString, Required: true},
			{Name: "symbol", Kind: datum.KindString, Required: true},
			{Name: "qty", Kind: datum.KindInt, Required: true},
		}},
		{Name: "Sector", Attrs: []object.AttrDef{
			{Name: "name", Kind: datum.KindString, Required: true},
			{Name: "boost", Kind: datum.KindInt, Required: true},
		}},
	}
}

func expC21(quick bool) error {
	holdings := c21Holdings
	evalIters, reps := 5, 3
	if quick {
		holdings = 40_000
		evalIters, reps = 3, 2
	}

	e, _ := workload.MustEngine()
	defer e.Close()
	tx := e.Begin()
	for _, cls := range c21Classes() {
		if err := e.DefineClass(tx, cls); err != nil {
			return err
		}
	}
	for i := 0; i < c21Sectors; i++ {
		if _, err := e.Create(tx, "Sector", map[string]datum.Value{
			"name":  datum.Str(fmt.Sprintf("sector%02d", i)),
			"boost": datum.Int(int64(i)),
		}); err != nil {
			return err
		}
	}
	symbols := make([]string, c21Stocks)
	for i := range symbols {
		symbols[i] = fmt.Sprintf("S%04d", i)
		if _, err := e.Create(tx, "Stock", map[string]datum.Value{
			"symbol": datum.Str(symbols[i]),
			"sector": datum.Str(fmt.Sprintf("sector%02d", i%c21Sectors)),
			"price":  datum.Float(float64(10 + i%90)),
		}); err != nil {
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	for base := 0; base < holdings; base += c21Batch {
		bt := e.Begin()
		end := base + c21Batch
		if end > holdings {
			end = holdings
		}
		for i := base; i < end; i++ {
			if _, err := e.Create(bt, "Holding", map[string]datum.Value{
				"owner":  datum.Str(fmt.Sprintf("acct%04d", i%4096)),
				"symbol": datum.Str(symbols[i%c21Stocks]),
				"qty":    datum.Int(int64(1 + i%100)),
			}); err != nil {
				return err
			}
		}
		if err := bt.Commit(); err != nil {
			return err
		}
	}

	cells := []struct{ name, src string }{
		{"scan", "select h.qty from Holding h where h.qty >= 0"},
		{"join3", "select h.qty, s.price, c.boost from Holding h, Stock s, Sector c " +
			"where h.symbol = s.symbol and s.sector = c.name"},
		{"agg", "select count(*) as n, sum(h.qty) as total, min(h.qty) as lo, max(h.qty) as hi " +
			"from Holding h"},
	}
	pars := []int{1, 2, 8}

	eval := func(src string, par int) (*query.Result, string, error) {
		rtx := e.Begin()
		sr := e.Objects.SnapshotReader(rtx)
		defer func() { sr.Close(); rtx.Commit() }()
		p := plan.Build(query.MustParse(src), sr, nil, plan.Options{Parallelism: par})
		res, err := p.Execute(sr, nil)
		return res, p.Explain(), err
	}
	oracle := func(src string) (*query.Result, error) {
		rtx := e.Begin()
		sr := e.Objects.SnapshotReader(rtx)
		defer func() { sr.Close(); rtx.Commit() }()
		return query.Eval(query.MustParse(src), sr, nil)
	}

	// Correctness gates before any timing: every parallelism returns
	// the serial plan's rows, which in turn match the tree-walk.
	for _, cell := range cells {
		want, err := oracle(cell.src)
		if err != nil {
			return err
		}
		for _, par := range pars {
			got, explain, err := eval(cell.src, par)
			if err != nil {
				return fmt.Errorf("%s @p%d: %w", cell.name, par, err)
			}
			if !reflect.DeepEqual(want, got) {
				return fmt.Errorf("%s @p%d diverges from the tree-walk oracle\n%s",
					cell.name, par, explain)
			}
			if par > 1 && !strings.Contains(explain, fmt.Sprintf("parallel=%d", par)) {
				return fmt.Errorf("%s @p%d plan has no parallel step:\n%s",
					cell.name, par, explain)
			}
		}
	}

	// Timing: the seeded heap is large, so best-of-reps with a
	// collection before each rep (and a relaxed GC target) keeps the
	// cells stable — same discipline as C20.
	oldGC := debug.SetGCPercent(400)
	defer debug.SetGCPercent(oldGC)
	best := map[string]map[int]time.Duration{}
	for _, cell := range cells {
		best[cell.name] = map[int]time.Duration{}
		for _, par := range pars {
			for r := 0; r < reps; r++ {
				runtime.GC()
				per, err := measure(evalIters, func(int) error {
					_, _, err := eval(cell.src, par)
					return err
				})
				if err != nil {
					return err
				}
				if cur := best[cell.name][par]; cur == 0 || per < cur {
					best[cell.name][par] = per
				}
			}
			recordMetric(fmt.Sprintf("C21/%s/p%d", cell.name, par),
				float64(best[cell.name][par]))
		}
	}

	row("cell", "p1", "p2", "p8", "p1/p8")
	for _, cell := range cells {
		b := best[cell.name]
		row(cell.name, b[1].Round(time.Microsecond), b[2].Round(time.Microsecond),
			b[8].Round(time.Microsecond), fmt.Sprintf("%.2f", float64(b[1])/float64(b[8])))
	}
	row("holdings / cpus / procs", fmt.Sprintf("%d / %d / %d",
		holdings, runtime.NumCPU(), runtime.GOMAXPROCS(0)))

	// The scalability bar needs real cores; with fewer than 4 the p8
	// cells measure scheduling overhead, which is exactly what the
	// gomaxprocs field in -json exists to flag.
	if runtime.NumCPU() >= 4 {
		for _, cell := range []string{"scan", "join3"} {
			speedup := float64(best[cell][1]) / float64(best[cell][8])
			if speedup < 2 {
				return fmt.Errorf("%s parallel-8 speedup %.2fx below the 2x bar", cell, speedup)
			}
		}
	}
	return nil
}
