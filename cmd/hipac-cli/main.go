// Command hipac-cli is an interactive shell for a HiPAC server.
//
// Usage:
//
//	hipac-cli [-addr 127.0.0.1:4815]
//	hipac-cli snapshot inspect <path>
//
// The second form is offline: it inspects a snapshot or delta file
// from a durability directory without connecting to a server —
// printing format, kind (full/delta), watermark, parent chain link,
// record count, and CRC status.
//
// Commands (one per line):
//
//	begin                          start a transaction (becomes current)
//	child                          start a subtransaction of the current one
//	commit | abort                 finish the current transaction
//	class <Name> <attr>:<kind>[!][*] ...   define a class (!=required, *=indexed)
//	classes                        list classes
//	create <Class> <attr>=<value> ...      create an object
//	modify <#oid> <attr>=<value> ...       update an object
//	delete <#oid>                  delete an object
//	get <#oid>                     show an object
//	select ...                     run a query (whole line)
//	explain select ...             show the query's physical plan
//	                               (parallel steps print parallel=N)
//	event <Name> [param ...]       define an external event
//	signal <Name> <param>=<value> ...      signal an external event
//	rule <file.json>               create a rule from a JSON definition
//	rules                          list rules
//	enable|disable|drop <rule>     manage a rule
//	fire <rule> [<param>=<value> ...]      fire a rule manually
//	stats                          engine counters + latency histograms
//	trace last [n]                 show the newest n firing trees
//	snapshot inspect <path>        inspect a local snapshot/delta file
//	help                           this text
//	quit
//
// Values parse as int, float, true/false, #oid, or string.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/datum"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/rule"
	"repro/internal/storage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4815", "server address")
	flag.Parse()

	// Offline verbs read local files directly — no server needed, so
	// they work on a cold durability directory (e.g. post-crash
	// forensics before deciding to restart the daemon).
	if args := flag.Args(); len(args) > 0 && args[0] == "snapshot" {
		if err := runSnapshot(os.Stdout, args[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "hipac-cli: %v\n", err)
			os.Exit(1)
		}
		return
	}

	c, err := client.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hipac-cli: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	fmt.Printf("connected to %s; 'help' for commands\n", *addr)

	sh := &shell{c: c, out: os.Stdout}
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print(sh.prompt())
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := sh.exec(line); err != nil {
			fmt.Fprintf(os.Stdout, "error: %v\n", err)
		}
	}
}

type shell struct {
	c   *client.Client
	out io.Writer
	// txnStack holds the current transaction lineage; commands that
	// need a transaction use the top and auto-begin when empty.
	txnStack []*client.Txn
}

func (s *shell) prompt() string {
	if len(s.txnStack) == 0 {
		return "hipac> "
	}
	return fmt.Sprintf("hipac[txn %d]> ", s.txnStack[len(s.txnStack)-1].ID)
}

func (s *shell) cur() *client.Txn {
	if len(s.txnStack) == 0 {
		return nil
	}
	return s.txnStack[len(s.txnStack)-1]
}

// withTxn returns the current transaction, or runs fn inside a
// one-shot transaction when none is open.
func (s *shell) withTxn(fn func(tx *client.Txn) error) error {
	if tx := s.cur(); tx != nil {
		return fn(tx)
	}
	tx, err := s.c.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func (s *shell) exec(line string) error {
	fields := strings.Fields(line)
	cmd := fields[0]
	args := fields[1:]
	switch cmd {
	case "help":
		fmt.Fprintln(s.out, helpText)
		return nil

	case "begin":
		tx, err := s.c.Begin()
		if err != nil {
			return err
		}
		s.txnStack = append(s.txnStack, tx)
		return nil

	case "child":
		tx := s.cur()
		if tx == nil {
			return fmt.Errorf("no open transaction")
		}
		child, err := tx.Child()
		if err != nil {
			return err
		}
		s.txnStack = append(s.txnStack, child)
		return nil

	case "commit", "abort":
		tx := s.cur()
		if tx == nil {
			return fmt.Errorf("no open transaction")
		}
		s.txnStack = s.txnStack[:len(s.txnStack)-1]
		if cmd == "commit" {
			return tx.Commit()
		}
		return tx.Abort()

	case "class":
		if len(args) < 1 {
			return fmt.Errorf("usage: class <Name> <attr>:<kind>[!][*] ...")
		}
		cls := object.Class{Name: args[0]}
		for _, spec := range args[1:] {
			ad, err := parseAttrDef(spec)
			if err != nil {
				return err
			}
			cls.Attrs = append(cls.Attrs, ad)
		}
		return s.withTxn(func(tx *client.Txn) error { return s.c.DefineClass(tx, cls) })

	case "classes":
		return s.withTxn(func(tx *client.Txn) error {
			classes, err := s.c.Classes(tx)
			if err != nil {
				return err
			}
			for _, cls := range classes {
				var parts []string
				for _, a := range cls.Attrs {
					p := a.Name + ":" + a.Kind.String()
					if a.Required {
						p += "!"
					}
					if a.Indexed {
						p += "*"
					}
					parts = append(parts, p)
				}
				fmt.Fprintf(s.out, "%-16s %s\n", cls.Name, strings.Join(parts, " "))
			}
			return nil
		})

	case "create":
		if len(args) < 1 {
			return fmt.Errorf("usage: create <Class> <attr>=<value> ...")
		}
		attrs, err := parseAssignments(args[1:])
		if err != nil {
			return err
		}
		return s.withTxn(func(tx *client.Txn) error {
			oid, err := s.c.Create(tx, args[0], attrs)
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "created %v\n", oid)
			return nil
		})

	case "modify":
		if len(args) < 2 {
			return fmt.Errorf("usage: modify <#oid> <attr>=<value> ...")
		}
		oid, err := parseOID(args[0])
		if err != nil {
			return err
		}
		attrs, err := parseAssignments(args[1:])
		if err != nil {
			return err
		}
		return s.withTxn(func(tx *client.Txn) error { return s.c.Modify(tx, oid, attrs) })

	case "delete":
		if len(args) != 1 {
			return fmt.Errorf("usage: delete <#oid>")
		}
		oid, err := parseOID(args[0])
		if err != nil {
			return err
		}
		return s.withTxn(func(tx *client.Txn) error { return s.c.Delete(tx, oid) })

	case "get":
		if len(args) != 1 {
			return fmt.Errorf("usage: get <#oid>")
		}
		oid, err := parseOID(args[0])
		if err != nil {
			return err
		}
		return s.withTxn(func(tx *client.Txn) error {
			obj, err := s.c.Get(tx, oid)
			if err != nil {
				return err
			}
			fmt.Fprintf(s.out, "%v %s %s\n", obj.OID, obj.Class, formatAttrs(obj.Attrs))
			return nil
		})

	case "select":
		return s.withTxn(func(tx *client.Txn) error {
			res, err := s.c.Query(tx, line, nil)
			if err != nil {
				return err
			}
			fmt.Fprintln(s.out, strings.Join(res.Columns, "\t"))
			for _, row := range res.Rows {
				parts := make([]string, len(row))
				for i, v := range row {
					parts[i] = v.String()
				}
				fmt.Fprintln(s.out, strings.Join(parts, "\t"))
			}
			fmt.Fprintf(s.out, "(%d rows)\n", len(res.Rows))
			return nil
		})

	case "explain":
		if len(args) == 0 {
			return fmt.Errorf("usage: explain select ...")
		}
		src := strings.TrimSpace(strings.TrimPrefix(line, "explain"))
		return s.withTxn(func(tx *client.Txn) error {
			text, err := s.c.Explain(tx, src, nil)
			if err != nil {
				return err
			}
			fmt.Fprint(s.out, text)
			return nil
		})

	case "event":
		if len(args) < 1 {
			return fmt.Errorf("usage: event <Name> [param ...]")
		}
		return s.c.DefineEvent(args[0], args[1:]...)

	case "signal":
		if len(args) < 1 {
			return fmt.Errorf("usage: signal <Name> <param>=<value> ...")
		}
		sigArgs, err := parseAssignments(args[1:])
		if err != nil {
			return err
		}
		return s.c.SignalEvent(s.cur(), args[0], sigArgs)

	case "rule", "replace":
		if len(args) != 1 {
			return fmt.Errorf("usage: %s <file.json>", cmd)
		}
		raw, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		var def rule.Def
		if err := json.Unmarshal(raw, &def); err != nil {
			return fmt.Errorf("parse %s: %w", args[0], err)
		}
		if cmd == "replace" {
			return s.c.UpdateRule(def)
		}
		return s.c.CreateRule(def)

	case "rules":
		rules, err := s.c.Rules()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%-24s %-32s %-10s %-10s %s\n", "NAME", "EVENT", "E-C", "C-A", "ENABLED")
		for _, r := range rules {
			fmt.Fprintf(s.out, "%-24s %-32s %-10s %-10s %v\n", r.Name, r.Event, r.EC, r.CA, r.Enabled)
		}
		return nil

	case "enable":
		return oneArg(args, "enable <rule>", s.c.EnableRule)
	case "disable":
		return oneArg(args, "disable <rule>", s.c.DisableRule)
	case "drop":
		return oneArg(args, "drop <rule>", s.c.DeleteRule)

	case "graph":
		nodes, err := s.c.Graph()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%-5s %-7s %-7s %s\n", "REFS", "CACHED", "EVFREE", "QUERY")
		for _, n := range nodes {
			fmt.Fprintf(s.out, "%-5d %-7v %-7v %s\n", n.Refs, n.Cached, n.EventFree, n.Query)
		}
		return nil

	case "stats":
		rep, err := s.c.Stats()
		if err != nil {
			return err
		}
		var pretty map[string]any
		if err := json.Unmarshal(rep.Engine, &pretty); err != nil {
			return err
		}
		out, _ := json.MarshalIndent(pretty, "", "  ")
		fmt.Fprintln(s.out, string(out))
		printRuleFirings(s.out, rep.Engine)
		printObs(s.out, rep.Obs)
		return nil

	case "checkpoint":
		rep, err := s.c.Checkpoint()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s checkpoint complete, %d records, %d wal bytes reclaimed\n",
			rep.Kind, rep.Records, rep.Reclaimed)
		return nil

	case "repl-status":
		rep, err := s.c.ReplStatus()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "role:  %s\n", rep.Role)
		switch rep.Role {
		case "replica":
			fmt.Fprintf(s.out, "primary:     %s\n", rep.Primary)
			fmt.Fprintf(s.out, "state:       %s\n", rep.State)
			fmt.Fprintf(s.out, "applied lsn: %d (generation %d)\n", rep.AppliedLSN, rep.Generation)
			fmt.Fprintf(s.out, "primary lsn: %d (lag %d bytes, last batch %.3fms behind)\n",
				rep.FlushedLSN, rep.LagBytes, float64(rep.LagNanos)/1e6)
			fmt.Fprintf(s.out, "batches:     %d applied, %d reconnects, %d bootstraps\n",
				rep.Batches, rep.Reconnects, rep.Bootstraps)
		default:
			fmt.Fprintf(s.out, "flushed lsn: %d\n", rep.FlushedLSN)
			fmt.Fprintf(s.out, "followers:   %d attached, %d batches shipped, %d resyncs served\n",
				rep.Connections, rep.Batches, rep.Bootstraps)
		}
		return nil

	case "promote":
		rep, err := s.c.Promote()
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "promoted at applied lsn %d; the node is restarting as a writable primary\n",
			rep.AppliedLSN)
		return nil

	case "snapshot":
		// Local file inspection; useful alongside a live session when
		// the durability directory is on the same host.
		return runSnapshot(s.out, args)

	case "trace":
		// trace last [n] — show the newest n finished firing trees.
		n := 1
		if len(args) > 0 && args[0] == "last" {
			args = args[1:]
		}
		if len(args) > 0 {
			v, err := strconv.Atoi(args[0])
			if err != nil {
				return fmt.Errorf("usage: trace last [n]")
			}
			n = v
		}
		trees, err := s.c.Trace(n)
		if err != nil {
			return err
		}
		if len(trees) == 0 {
			fmt.Fprintln(s.out, "(no firing trees recorded)")
			return nil
		}
		for i, tree := range trees {
			if i > 0 {
				fmt.Fprintln(s.out)
			}
			printSpan(s.out, &tree, 0)
		}
		return nil

	case "fire":
		if len(args) < 1 {
			return fmt.Errorf("usage: fire <rule> [<param>=<value> ...]")
		}
		fireArgs, err := parseAssignments(args[1:])
		if err != nil {
			return err
		}
		return s.c.FireRule(s.cur(), args[0], fireArgs)

	default:
		return fmt.Errorf("unknown command %q; try help", cmd)
	}
}

func oneArg(args []string, usage string, fn func(string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s", usage)
	}
	return fn(args[0])
}

// printRuleFirings renders the per-rule firing counters as a table,
// most-fired first (ties by name). The raw map is already in the JSON
// dump above; the table is the at-a-glance view.
func printRuleFirings(w io.Writer, engine json.RawMessage) {
	var rep struct {
		Rules struct {
			RuleFirings map[string]uint64
		}
	}
	if err := json.Unmarshal(engine, &rep); err != nil || len(rep.Rules.RuleFirings) == 0 {
		return
	}
	names := make([]string, 0, len(rep.Rules.RuleFirings))
	for name := range rep.Rules.RuleFirings {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		fi, fj := rep.Rules.RuleFirings[names[i]], rep.Rules.RuleFirings[names[j]]
		if fi != fj {
			return fi > fj
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "\n%-30s %10s\n", "RULE", "FIRINGS")
	for _, name := range names {
		fmt.Fprintf(w, "%-30s %10d\n", name, rep.Rules.RuleFirings[name])
	}
}

// printObs renders the latency histograms and trace-ring totals that
// ride along with the engine counters in a stats reply.
func printObs(w io.Writer, s obs.Snapshot) {
	if !s.Enabled {
		fmt.Fprintln(w, "\n(observability disabled)")
		return
	}
	names := make([]string, 0, len(s.Hist))
	for name := range s.Hist {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%-14s %10s %12s %12s %12s\n", "LATENCY", "COUNT", "MEAN", "P50", "P99")
	for _, name := range names {
		h := s.Hist[name]
		if h.Count == 0 {
			fmt.Fprintf(w, "%-14s %10d %12s %12s %12s\n", name, 0, "-", "-", "-")
			continue
		}
		if obs.HistIsCount(name) {
			// Count histogram (group-commit batch sizes): plain numbers.
			fmt.Fprintf(w, "%-14s %10d %12.1f %12d %12d\n",
				name, h.Count, h.MeanCount(), h.QuantileCount(0.5), h.QuantileCount(0.99))
			continue
		}
		fmt.Fprintf(w, "%-14s %10d %12v %12v %12v\n",
			name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
	fmt.Fprintf(w, "traces: %d recorded, %d dropped (capacity %d); slow firings: %d\n",
		s.TraceRecorded, s.TraceDropped, s.TraceCapacity, s.SlowFirings)
}

// printSpan renders one firing-tree node and recurses over its
// children, two spaces per depth level.
func printSpan(w io.Writer, sp *obs.SpanSnapshot, depth int) {
	indent := strings.Repeat("  ", depth)
	line := indent + sp.Kind
	if sp.Name != "" {
		line += " " + sp.Name
	}
	if sp.Mode != "" {
		line += " [" + sp.Mode + "]"
	}
	if sp.Outcome != "" {
		line += " " + sp.Outcome
	}
	if sp.Txn != 0 {
		line += fmt.Sprintf(" txn=%d", sp.Txn)
	}
	if sp.DurNS > 0 {
		line += fmt.Sprintf(" (%v)", time.Duration(sp.DurNS))
	}
	fmt.Fprintln(w, line)
	for i := range sp.Children {
		printSpan(w, &sp.Children[i], depth+1)
	}
}

const helpText = `commands:
  begin / child / commit / abort
  class <Name> <attr>:<kind>[!][*] ...
  classes
  create <Class> <attr>=<value> ...
  modify <#oid> <attr>=<value> ...
  delete <#oid> | get <#oid>
  select <query>
  explain select <query>   (steps past the parallel gate print parallel=N)
  event <Name> [param ...]
  signal <Name> <param>=<value> ...
  rule <file.json> | replace <file.json> | rules
  enable|disable|drop <rule>
  fire <rule> [<param>=<value> ...]
  stats | graph | trace last [n]
  checkpoint
  repl-status | promote
  snapshot inspect <path>
  quit`

// runSnapshot handles "snapshot inspect <path>": it reads the file
// directly rather than asking the server, so the same code backs the
// offline invocation (hipac-cli snapshot inspect <path>).
func runSnapshot(out io.Writer, args []string) error {
	if len(args) != 2 || args[0] != "inspect" {
		return fmt.Errorf("usage: snapshot inspect <path>")
	}
	info, err := storage.InspectSnapshotFile(args[1])
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "path:      %s\n", info.Path)
	fmt.Fprintf(out, "format:    %s\n", info.Format)
	fmt.Fprintf(out, "kind:      %s\n", info.Kind)
	fmt.Fprintf(out, "watermark: %d\n", info.Watermark)
	fmt.Fprintf(out, "next oid:  %d\n", info.NextOID)
	if info.Kind == "delta" {
		fmt.Fprintf(out, "parent:    watermark %d, crc %08x\n",
			info.ParentWatermark, info.ParentCRC)
	}
	if len(info.ClassCards) > 0 {
		names := make([]string, 0, len(info.ClassCards))
		for name := range info.ClassCards {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%d", name, info.ClassCards[name])
		}
		fmt.Fprintf(out, "stats:     %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(out, "records:   %d\n", info.Records)
	status := "ok"
	if !info.CRCOK {
		status = "MISMATCH (file damaged or truncated)"
	}
	fmt.Fprintf(out, "crc:       %08x (%s)\n", info.CRC, status)
	return nil
}

func parseAttrDef(spec string) (object.AttrDef, error) {
	var ad object.AttrDef
	for strings.HasSuffix(spec, "!") || strings.HasSuffix(spec, "*") {
		if strings.HasSuffix(spec, "!") {
			ad.Required = true
		} else {
			ad.Indexed = true
		}
		spec = spec[:len(spec)-1]
	}
	name, kindName, ok := strings.Cut(spec, ":")
	if !ok {
		return ad, fmt.Errorf("attribute %q needs name:kind", spec)
	}
	kind, err := datum.KindFromString(kindName)
	if err != nil {
		return ad, err
	}
	ad.Name = name
	ad.Kind = kind
	return ad, nil
}

func parseAssignments(args []string) (map[string]datum.Value, error) {
	out := map[string]datum.Value{}
	for _, a := range args {
		name, raw, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("expected attr=value, got %q", a)
		}
		out[name] = parseValue(raw)
	}
	return out, nil
}

func parseValue(raw string) datum.Value {
	switch {
	case raw == "true":
		return datum.Bool(true)
	case raw == "false":
		return datum.Bool(false)
	case raw == "null":
		return datum.Null()
	case strings.HasPrefix(raw, "#"):
		if n, err := strconv.ParseUint(raw[1:], 10, 64); err == nil {
			return datum.ID(datum.OID(n))
		}
	}
	if n, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return datum.Int(n)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return datum.Float(f)
	}
	return datum.Str(strings.Trim(raw, `'"`))
}

func parseOID(raw string) (datum.OID, error) {
	raw = strings.TrimPrefix(raw, "#")
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad oid %q", raw)
	}
	return datum.OID(n), nil
}

func formatAttrs(attrs map[string]datum.Value) string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k].String()
	}
	return strings.Join(parts, " ")
}
