package main

// End-to-end shell tests: drive the command dispatcher against a real
// in-process server and assert on the printed output.

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/datum"
	"repro/internal/rule"
	"repro/internal/server"
)

func newShell(t *testing.T) (*shell, *strings.Builder) {
	t.Helper()
	eng, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		eng.Close()
	})
	var out strings.Builder
	return &shell{c: c, out: &out}, &out
}

func run(t *testing.T, sh *shell, lines ...string) {
	t.Helper()
	for _, line := range lines {
		if err := sh.exec(line); err != nil {
			t.Fatalf("exec(%q): %v", line, err)
		}
	}
}

func TestShellDataLifecycle(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh,
		"class Stock symbol:string! price:float*",
		"classes",
		"create Stock symbol=XRX price=48.5",
		"select s.symbol, s.price from Stock s",
	)
	text := out.String()
	for _, want := range []string{"Stock", "symbol:string!", "price:float*", "created", `"XRX"`, "48.5", "(1 rows)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

func TestShellTransactions(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "class C v:int", "begin")
	if sh.cur() == nil {
		t.Fatal("begin did not open a transaction")
	}
	run(t, sh, "create C v=1", "abort")
	if sh.cur() != nil {
		t.Fatal("abort did not pop the transaction")
	}
	run(t, sh, "select count(*) as n from C c")
	if !strings.Contains(out.String(), "0") {
		t.Fatalf("aborted create visible:\n%s", out.String())
	}
	// Nested: begin -> child -> commit -> commit.
	run(t, sh, "begin", "child", "create C v=2", "commit", "commit")
	out.Reset()
	run(t, sh, "select count(*) as n from C c")
	if !strings.Contains(out.String(), "1") {
		t.Fatalf("nested commit lost:\n%s", out.String())
	}
}

func TestShellModifyGetDelete(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "class C v:int", "create C v=1")
	// Extract the created OID from the output.
	text := out.String()
	idx := strings.Index(text, "created #")
	if idx < 0 {
		t.Fatalf("no oid in output: %s", text)
	}
	oid := strings.TrimSpace(text[idx+len("created "):])
	run(t, sh, "modify "+oid+" v=42", "get "+oid)
	if !strings.Contains(out.String(), "v=42") {
		t.Fatalf("modify lost:\n%s", out.String())
	}
	run(t, sh, "delete "+oid)
	if err := sh.exec("get " + oid); err == nil {
		t.Fatal("get after delete should fail")
	}
}

func TestShellRulesFromJSONFile(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "class Stock symbol:string price:float",
		"class Audit note:string")
	def := rule.Def{
		Name:  "audit",
		Event: "modify(Stock)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Audit",
			Attrs: map[string]string{"note": "'hit'"}}},
		EC: "immediate", CA: "immediate",
	}
	raw, _ := json.Marshal(def)
	path := filepath.Join(t.TempDir(), "rule.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	run(t, sh, "rule "+path, "rules")
	if !strings.Contains(out.String(), "audit") || !strings.Contains(out.String(), "modify(Stock)") {
		t.Fatalf("rules listing:\n%s", out.String())
	}
	// Fire it through a data change and observe the audit row.
	run(t, sh, "create Stock symbol=XRX price=1")
	out.Reset()
	// Use the created OID via a query-driven modify: fetch OID first.
	run(t, sh, "select s from Stock s")
	line := out.String()
	oid := strings.TrimSpace(strings.Split(strings.Split(line, "\n")[1], "\t")[0])
	run(t, sh, "modify "+oid+" price=2")
	out.Reset()
	run(t, sh, "select count(*) as n from Audit a")
	if !strings.Contains(out.String(), "1") {
		t.Fatalf("rule did not fire:\n%s", out.String())
	}
	// Disable / enable / drop round trip.
	run(t, sh, "disable audit", "enable audit", "drop audit")
	out.Reset()
	run(t, sh, "rules")
	if strings.Contains(out.String(), "audit  ") {
		t.Fatalf("rule not dropped:\n%s", out.String())
	}
}

func TestShellEventsAndFire(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh,
		"class Log note:string",
		"event Ping n",
	)
	def := rule.Def{
		Name:  "onping",
		Event: "external(Ping)",
		Action: []rule.Step{{Kind: rule.StepCreate, Class: "Log",
			Attrs: map[string]string{"note": "'ping'"}}},
		EC: "immediate", CA: "immediate",
	}
	raw, _ := json.Marshal(def)
	path := filepath.Join(t.TempDir(), "r.json")
	os.WriteFile(path, raw, 0o644)
	run(t, sh, "rule "+path,
		"begin", "signal Ping n=1", "commit")
	out.Reset()
	run(t, sh, "select count(*) as n from Log l")
	if !strings.Contains(out.String(), "1") {
		t.Fatalf("signal did not fire rule:\n%s", out.String())
	}
	// Manual fire (outside a txn it runs as a separate firing).
	run(t, sh, "begin", "fire onping", "commit")
	out.Reset()
	run(t, sh, "select count(*) as n from Log l")
	if !strings.Contains(out.String(), "2") {
		t.Fatalf("manual fire missing:\n%s", out.String())
	}
}

func TestShellGraphAndStats(t *testing.T) {
	sh, out := newShell(t)
	run(t, sh, "class Stock price:float")
	def := rule.Def{
		Name:      "g",
		Event:     "modify(Stock)",
		Condition: []string{"select s from Stock s where s.price > 5"},
		Action:    []rule.Step{{Kind: rule.StepAbort}},
		EC:        "immediate", CA: "immediate",
	}
	raw, _ := json.Marshal(def)
	path := filepath.Join(t.TempDir(), "g.json")
	os.WriteFile(path, raw, 0o644)
	run(t, sh, "rule "+path, "graph")
	if !strings.Contains(out.String(), "s.price > 5") {
		t.Fatalf("graph output:\n%s", out.String())
	}
	out.Reset()
	run(t, sh, "stats")
	if !strings.Contains(out.String(), "Rules") {
		t.Fatalf("stats output:\n%s", out.String())
	}
}

func TestShellErrors(t *testing.T) {
	sh, _ := newShell(t)
	for _, bad := range []string{
		"nonsense",
		"create",       // missing class
		"modify #1",    // missing assignment
		"get notanoid", // bad oid
		"class",        // missing name
		"class X attr", // bad attr spec
		"commit",       // no txn
		"child",        // no txn
		"rule /does/not/exist.json",
		"fire", // missing rule
	} {
		if err := sh.exec(bad); err == nil {
			t.Errorf("exec(%q) should fail", bad)
		}
	}
}

func TestValueParsing(t *testing.T) {
	cases := map[string]datum.Value{
		"42":    datum.Int(42),
		"4.5":   datum.Float(4.5),
		"true":  datum.Bool(true),
		"false": datum.Bool(false),
		"null":  datum.Null(),
		"#7":    datum.ID(7),
		"hello": datum.Str("hello"),
		"'q'":   datum.Str("q"),
	}
	for raw, want := range cases {
		if got := parseValue(raw); !datum.Equal(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Errorf("parseValue(%q) = %v, want %v", raw, got, want)
		}
	}
}
