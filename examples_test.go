package hipac_test

// Smoke tests: every runnable example must build, run to completion,
// and print its expected landmark output. These run the real binaries
// via `go run`, exactly as the README instructs.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, path string, args ...string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not in PATH")
	}
	cmd := exec.Command("go", append([]string{"run", path}, args...)...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("%s: timed out", path)
	}
	if err != nil {
		t.Fatalf("%s: %v\n%s", path, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "./examples/quickstart")
	if !strings.Contains(out, "2 alert(s)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleSAA(t *testing.T) {
	out := runExample(t, "./examples/saa", "-quotes", "150", "-seed", "1")
	for _, want := range []string{"[display]", "executing: 500 XRX", "portfolio of clientA: 500 XRX"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleIntegrity(t *testing.T) {
	out := runExample(t, "./examples/integrity")
	for _, want := range []string{"rejected immediately", "commit refused", "committed",
		`"alice": 70`, `"bob": 130`} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleDerived(t *testing.T) {
	out := runExample(t, "./examples/derived")
	for _, want := range []string{"tech   count=3 total=200.00", "tech   count=3 total=210.00",
		"auto   count=1 total=45.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleMonitor(t *testing.T) {
	out := runExample(t, "./examples/monitor")
	for _, want := range []string{"opening bell", "30s after open", "ALERT: order placed and then cancelled",
		"done (simulated 10:00)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The periodic rule fired six times across the simulated hour.
	if got := strings.Count(out, "periodic health check"); got != 6 {
		t.Fatalf("periodic fired %d times, want 6:\n%s", got, out)
	}
}
